package kg

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements snapshot pinning: Graph.Pin captures an immutable
// read view of a live store so that an entire operator tree — or one
// Evaluate/Count call — reads exactly one content version even while
// concurrent Inserts land. Before pinning, each operator (and each recursion
// step of the exact evaluator) loaded its own snapshot, so a query racing an
// ingest could combine match lists from different versions: every list was
// internally consistent, but the joined answer corresponded to no single
// store state. A pinned view gives full snapshot isolation — mid-mutation
// answers are bit-identical to a quiescent store holding exactly the pinned
// insert prefix.
//
// For the flat store a pin is one atomic storeState load. For the sharded
// store the directory snapshot is captured first and the per-shard states
// after it: shard states are always at least as new as the directory (Insert
// updates the shard before the directory), so every directory entry
// resolves, and shard-local triples beyond the directory's coverage — later
// inserts, or a concurrent compaction that already absorbed them — are
// clamped out. The pinned triple set is therefore exactly the global
// insertion-order prefix the directory snapshot describes.

// pinnedStore is an immutable view of one segment: a captured storeState
// plus a visibility limit. Local indexes at or beyond limit belong to
// inserts after the pin (or to a directory not yet covering them) and are
// invisible. A flat-store pin always has limit == len(s.triples), keeping
// every read a straight delegation to the captured snapshot.
type pinnedStore struct {
	dict  *Dict
	s     *storeState
	limit int32
	// version is the owning store's content version at pin time (see
	// Graph.Version); constant for the pin's lifetime.
	version uint64
	// dup records HasDuplicates at pin time. It may over-approximate for a
	// clamped shard view (a duplicate beyond the limit still counts), which
	// only costs operators an unnecessary dedup map — never correctness.
	dup bool
}

var _ matcher = (*pinnedStore)(nil)

// unclamped reports whether the captured snapshot holds no triples beyond
// the visibility limit, making every delegation exact.
func (ps *pinnedStore) unclamped() bool { return int(ps.limit) >= len(ps.s.triples) }

// Dict implements Graph.
func (ps *pinnedStore) Dict() *Dict { return ps.dict }

// Len implements Graph: the pinned triple count, constant for the pin's
// lifetime.
func (ps *pinnedStore) Len() int { return int(ps.limit) }

// Frozen implements Graph; a pin exists only after Freeze.
func (ps *pinnedStore) Frozen() bool { return true }

// Version implements Graph.
func (ps *pinnedStore) Version() uint64 { return ps.version }

// Pin implements Graph: a pinned view is already immutable.
func (ps *pinnedStore) Pin() Graph { return ps }

// Triple implements Graph.
func (ps *pinnedStore) Triple(i int32) Triple { return ps.s.triples[i] }

// HasDuplicates implements Graph (see the dup field for the clamped-view
// over-approximation).
func (ps *pinnedStore) HasDuplicates() bool { return ps.dup }

// MatchList implements Graph. The unclamped path returns the snapshot's own
// (cached) list; a clamped view copies only when an invisible index actually
// appears in it.
func (ps *pinnedStore) MatchList(p Pattern) []int32 {
	l := ps.s.matchList(p)
	if ps.unclamped() {
		return l
	}
	trim := -1
	for i, ti := range l {
		if ti >= ps.limit {
			trim = i
			break
		}
	}
	if trim < 0 {
		return l
	}
	out := make([]int32, 0, len(l)-1)
	out = append(out, l[:trim]...)
	for _, ti := range l[trim+1:] {
		if ti < ps.limit {
			out = append(out, ti)
		}
	}
	return out
}

// Cardinality implements Graph, counting only visible triples.
func (ps *pinnedStore) Cardinality(p Pattern) int {
	if ps.unclamped() {
		return ps.s.cardinality(p)
	}
	n := 0
	for _, ti := range ps.s.post.matchList(p) {
		if ti < ps.limit {
			n++
		}
	}
	for _, hi := range ps.s.headSorted {
		if hi < ps.limit && p.Matches(ps.s.triples[hi]) {
			n++
		}
	}
	return n
}

// MaxScore implements Graph: the Definition 5 normalisation constant over
// visible matches. Both sources are score-sorted, so the first visible match
// of each bounds it.
func (ps *pinnedStore) MaxScore(p Pattern) float64 {
	if ps.unclamped() {
		return ps.s.maxScore(p)
	}
	max := 0.0
	for _, ti := range ps.s.post.matchList(p) {
		if ti < ps.limit {
			max = ps.s.triples[ti].Score
			break
		}
	}
	for _, hi := range ps.s.headSorted {
		if hi < ps.limit && p.Matches(ps.s.triples[hi]) {
			if sc := ps.s.triples[hi].Score; sc > max {
				max = sc
			}
			break
		}
	}
	return max
}

// NormalizedScores implements Graph.
func (ps *pinnedStore) NormalizedScores(p Pattern) []float64 {
	return normalizedScores(ps, p)
}

// forCandidates implements matcher over the visible prefix.
func (ps *pinnedStore) forCandidates(sub Pattern, f func(t Triple)) {
	if ps.unclamped() {
		ps.s.forCandidates(sub, f)
		return
	}
	cand, ok := ps.s.post.candidates(sub)
	if !ok {
		cand = ps.s.post.matchList(sub)
	}
	for _, ti := range cand {
		if ti < ps.limit {
			f(ps.s.triples[ti])
		}
	}
	for _, hi := range ps.s.headSorted {
		if hi < ps.limit {
			f(ps.s.triples[hi])
		}
	}
}

// Evaluate implements Graph over the pinned prefix.
func (ps *pinnedStore) Evaluate(q Query) []Answer {
	return evaluateWeighted(ps, q, nil)
}

// EvaluateWeighted implements Graph.
func (ps *pinnedStore) EvaluateWeighted(q Query, weights []float64) []Answer {
	return evaluateWeighted(ps, q, weights)
}

// Count implements Graph.
func (ps *pinnedStore) Count(q Query) int { return countAnswers(ps, q) }

// Selectivity implements Graph.
func (ps *pinnedStore) Selectivity(q Query) float64 { return selectivity(ps, q) }

// PatternString implements Graph.
func (ps *pinnedStore) PatternString(p Pattern) string { return patternString(ps.dict, p) }

// QueryString implements Graph.
func (ps *pinnedStore) QueryString(q Query) string { return queryString(ps.dict, q) }

// pin captures the store's current snapshot as an immutable view.
func (st *Store) pin() *pinnedStore {
	s := st.state()
	return &pinnedStore{
		dict:    st.dict,
		s:       s,
		limit:   int32(len(s.triples)),
		version: st.version.Load(),
		dup:     s.post.hasDuplicates || s.headDup,
	}
}

// Pin implements Graph (see the file comment for the isolation contract).
func (st *Store) Pin() Graph { return st.pin() }

// pinnedSharded is an immutable view of a sharded store: one directory
// snapshot plus one clamped pinnedStore per shard, together describing
// exactly the global insertion-order prefix the directory covers.
type pinnedSharded struct {
	ss      *ShardedStore
	dir     *shardedDir
	shards  []*pinnedStore
	version uint64
	// merged lazily caches materialised global match lists for this pin
	// (cold paths — single-segment scans, oracles; the hot query path merges
	// per-shard views through ShardedListScan and never fills it).
	merged atomic.Pointer[listCache]
}

var _ matcher = (*pinnedSharded)(nil)
var _ ShardedGraph = (*pinnedSharded)(nil)

// pin captures the current directory snapshot and per-shard states. Shard
// states are loaded after the directory, so they cover every directory entry;
// the per-shard limits clamp everything newer out.
func (ss *ShardedStore) pin() *pinnedSharded {
	d := ss.dir.Load()
	if d == nil {
		panic("kg: Pin before Freeze")
	}
	v := ss.version.Load()
	shards := make([]*pinnedStore, len(ss.shards))
	for i, sh := range ss.shards {
		s := sh.state()
		shards[i] = &pinnedStore{
			dict:    ss.dict,
			s:       s,
			limit:   int32(len(d.global[i])),
			version: v,
			dup:     s.post.hasDuplicates || s.headDup,
		}
	}
	return &pinnedSharded{ss: ss, dir: d, shards: shards, version: v}
}

// Pin implements Graph (see the file comment for the isolation contract).
func (ss *ShardedStore) Pin() Graph { return ss.pin() }

// Dict implements Graph.
func (ps *pinnedSharded) Dict() *Dict { return ps.ss.dict }

// Len implements Graph: the pinned global triple count.
func (ps *pinnedSharded) Len() int { return len(ps.dir.locShard) }

// Frozen implements Graph.
func (ps *pinnedSharded) Frozen() bool { return true }

// Version implements Graph.
func (ps *pinnedSharded) Version() uint64 { return ps.version }

// Pin implements Graph.
func (ps *pinnedSharded) Pin() Graph { return ps }

// NumShards implements ShardedGraph.
func (ps *pinnedSharded) NumShards() int { return len(ps.shards) }

// ShardView implements ShardedGraph: shard i's clamped pinned view.
func (ps *pinnedSharded) ShardView(i int) Graph { return ps.shards[i] }

// GlobalIndexes implements ShardedGraph. The table's length equals the
// shard view's visibility limit, so every visible local index maps.
func (ps *pinnedSharded) GlobalIndexes(i int) []int32 { return ps.dir.global[i] }

// Triple implements Graph: every pinned directory entry resolves in its
// shard's captured state.
func (ps *pinnedSharded) Triple(i int32) Triple {
	return ps.shards[ps.dir.locShard[i]].s.triples[ps.dir.locIdx[i]]
}

// HasDuplicates implements Graph.
func (ps *pinnedSharded) HasDuplicates() bool {
	for _, sh := range ps.shards {
		if sh.dup {
			return true
		}
	}
	return false
}

// subjectShard returns the single shard able to match p when p's subject is
// bound, and ok=false otherwise.
func (ps *pinnedSharded) subjectShard(p Pattern) (*pinnedStore, bool) {
	if p.S.IsVar {
		return nil, false
	}
	return ps.shards[ps.ss.shardFor(p.S.ID)], true
}

// Cardinality implements Graph over the pinned prefix.
func (ps *pinnedSharded) Cardinality(p Pattern) int {
	if sh, ok := ps.subjectShard(p); ok {
		return sh.Cardinality(p)
	}
	n := 0
	for _, sh := range ps.shards {
		n += sh.Cardinality(p)
	}
	return n
}

// MaxScore implements Graph over the pinned prefix.
func (ps *pinnedSharded) MaxScore(p Pattern) float64 {
	if sh, ok := ps.subjectShard(p); ok {
		return sh.MaxScore(p)
	}
	max := 0.0
	for _, sh := range ps.shards {
		if m := sh.MaxScore(p); m > max {
			max = m
		}
	}
	return max
}

// MatchList implements Graph: the global match list in canonical order,
// materialised once per pattern per pin behind a single-flight cache.
func (ps *pinnedSharded) MatchList(p Pattern) []int32 {
	c := ps.merged.Load()
	if c == nil {
		c = newListCache()
		if !ps.merged.CompareAndSwap(nil, c) {
			c = ps.merged.Load()
		}
	}
	return c.get(p.Key(), func() []int32 { return ps.mergeMatches(p) })
}

// mergeMatches translates every shard's clamped match list to global indexes
// and restores canonical global order.
func (ps *pinnedSharded) mergeMatches(p Pattern) []int32 {
	var out []int32
	for si, sh := range ps.shards {
		glob := ps.dir.global[si]
		for _, li := range sh.MatchList(p) {
			out = append(out, glob[li])
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ta, tb := ps.Triple(out[a]), ps.Triple(out[b])
		if ta.Score != tb.Score {
			return ta.Score > tb.Score
		}
		return out[a] < out[b]
	})
	return out
}

// NormalizedScores implements Graph.
func (ps *pinnedSharded) NormalizedScores(p Pattern) []float64 {
	return normalizedScores(ps, p)
}

// forCandidates implements matcher. A bound subject pins one shard; every
// other shape unions the shards' candidate enumerations.
func (ps *pinnedSharded) forCandidates(sub Pattern, f func(t Triple)) {
	if sh, ok := ps.subjectShard(sub); ok {
		sh.forCandidates(sub, f)
		return
	}
	for _, sh := range ps.shards {
		sh.forCandidates(sub, f)
	}
}

// fanoutLevel0 reports whether the evaluator's first join level can be
// fanned out across shards for q under order (see ShardedStore.Evaluate).
func (ps *pinnedSharded) fanoutLevel0(q Query, order []int) bool {
	if len(ps.shards) == 1 || len(order) == 0 {
		return false
	}
	_, pinned := ps.subjectShard(q.Patterns[order[0]])
	return !pinned
}

// Evaluate implements Graph: the complete answer set over the pinned prefix,
// with the first join level fanned out across shards (per-shard level-0
// candidate sets are disjoint, so the derivation multiset matches the
// sequential walk exactly).
func (ps *pinnedSharded) Evaluate(q Query) []Answer {
	return ps.evaluateWeightedParallel(q, nil)
}

// EvaluateWeighted implements Graph.
func (ps *pinnedSharded) EvaluateWeighted(q Query, weights []float64) []Answer {
	return ps.evaluateWeightedParallel(q, weights)
}

func (ps *pinnedSharded) evaluateWeightedParallel(q Query, weights []float64) []Answer {
	vs := NewVarSet(q)
	order := evalOrder(ps, q)
	if !ps.fanoutLevel0(q, order) {
		out := collectAnswers(ps, q, vs, order, weights, nil)
		out = DedupMax(out)
		SortAnswers(out)
		return out
	}
	outs := make([][]Answer, len(ps.shards))
	var wg sync.WaitGroup
	for si := range ps.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			outs[si] = collectAnswers(ps, q, vs, order, weights, ps.shards[si].forCandidates)
		}(si)
	}
	wg.Wait()
	var out []Answer
	for _, o := range outs {
		out = append(out, o...)
	}
	out = DedupMax(out)
	SortAnswers(out)
	return out
}

// Count implements Graph (see ShardedStore.Count for the fan-out rules).
func (ps *pinnedSharded) Count(q Query) int {
	vs := NewVarSet(q)
	order := evalOrder(ps, q)
	if ps.HasDuplicates() || !ps.fanoutLevel0(q, order) {
		return countAnswers(ps, q)
	}
	counts := make([]int, len(ps.shards))
	var wg sync.WaitGroup
	for si := range ps.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			counts[si] = countDerivations(ps, q, vs, order, ps.shards[si].forCandidates)
		}(si)
	}
	wg.Wait()
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// Selectivity implements Graph.
func (ps *pinnedSharded) Selectivity(q Query) float64 { return selectivity(ps, q) }

// PatternString implements Graph.
func (ps *pinnedSharded) PatternString(p Pattern) string { return patternString(ps.ss.dict, p) }

// QueryString implements Graph.
func (ps *pinnedSharded) QueryString(q Query) string { return queryString(ps.ss.dict, q) }
