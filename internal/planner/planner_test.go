package planner

import (
	"strings"
	"testing"

	"specqp/internal/kg"
	"specqp/internal/relax"
	"specqp/internal/stats"
)

// planStore builds a KG where pattern A has many strong answers and pattern
// B is scarce, with a strong relaxation B→C available.
func planStore(t *testing.T) (*kg.Store, *relax.RuleSet, kg.Pattern, kg.Pattern) {
	t.Helper()
	st := kg.NewStore(nil)
	add := func(s, o string, sc float64) {
		if err := st.AddSPO(s, "type", o, sc); err != nil {
			t.Fatal(err)
		}
	}
	// 40 entities typed A with slowly decaying scores.
	for i := 0; i < 40; i++ {
		add(ent(i), "A", 100-float64(i))
	}
	// The same 40 entities typed B (so A⋈B has 40 answers)…
	for i := 0; i < 40; i++ {
		add(ent(i), "B", 90-float64(i))
	}
	// …and typed C with very strong scores for a *different* population mix,
	// making B→C a tempting relaxation.
	for i := 0; i < 40; i++ {
		add(ent(i), "C", 200-float64(i))
	}
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("type")
	a, _ := d.Lookup("A")
	b, _ := d.Lookup("B")
	c, _ := d.Lookup("C")
	pa := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(a))
	pb := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(b))
	pc := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(c))
	rules := relax.NewRuleSet()
	if err := rules.Add(relax.Rule{From: pb, To: pc, Weight: 0.9}); err != nil {
		t.Fatal(err)
	}
	return st, rules, pa, pb
}

func ent(i int) string { return "e" + string(rune('A'+i/26)) + string(rune('a'+i%26)) }

func newPlanner(st *kg.Store, rules *relax.RuleSet) *Planner {
	return New(stats.NewCatalog(st, 2, nil), rules)
}

func TestPlanPartitionInvariants(t *testing.T) {
	st, rules, pa, pb := planStore(t)
	pl := newPlanner(st, rules)
	q := kg.NewQuery(pa, pb)
	for _, k := range []int{1, 5, 10, 20, 50} {
		p := pl.Plan(q, k)
		// Join group and singletons partition the pattern indexes.
		seen := map[int]bool{}
		for _, i := range append(append([]int{}, p.JoinGroup...), p.Singletons...) {
			if seen[i] {
				t.Fatalf("k=%d: index %d appears twice", k, i)
			}
			seen[i] = true
		}
		if len(seen) != len(q.Patterns) {
			t.Fatalf("k=%d: partition covers %d of %d patterns", k, len(seen), len(q.Patterns))
		}
		if len(p.Decisions) != len(q.Patterns) {
			t.Fatalf("k=%d: %d decisions", k, len(p.Decisions))
		}
	}
}

func TestPlanNoRulesMeansJoinGroup(t *testing.T) {
	st, rules, pa, pb := planStore(t)
	pl := newPlanner(st, rules)
	q := kg.NewQuery(pa, pb)
	p := pl.Plan(q, 10)
	// Pattern A has no rules: always join group.
	for _, i := range p.Singletons {
		if i == 0 {
			t.Fatal("pattern without rules was marked for relaxation")
		}
	}
	if !p.Decisions[0].HasRule == false && p.Decisions[0].Relax {
		t.Fatal("ruleless pattern relaxed")
	}
}

func TestPlanScarceQueryRelaxes(t *testing.T) {
	st, rules, pa, pb := planStore(t)
	pl := newPlanner(st, rules)
	q := kg.NewQuery(pa, pb)
	// k far beyond the original 40 answers: B must be relaxed.
	p := pl.Plan(q, 50)
	if !p.EQkOK && p.EQk != 0 {
		t.Fatal("EQk must be 0 when the original query cannot reach k")
	}
	if len(p.Singletons) != 1 || p.Singletons[0] != 1 {
		t.Fatalf("k=50: singletons %v, want [1]", p.Singletons)
	}
}

func TestPlanRelaxMaskAndNumRelaxed(t *testing.T) {
	p := Plan{Singletons: []int{0, 2}}
	if p.RelaxMask() != 0b101 {
		t.Fatalf("mask: got %b", p.RelaxMask())
	}
	if p.NumRelaxed() != 2 {
		t.Fatalf("num relaxed: got %d", p.NumRelaxed())
	}
}

func TestTriniTPlanRelaxesEverything(t *testing.T) {
	q := kg.NewQuery(
		kg.NewPattern(kg.Var("s"), kg.Const(0), kg.Const(1)),
		kg.NewPattern(kg.Var("s"), kg.Const(0), kg.Const(2)),
		kg.NewPattern(kg.Var("s"), kg.Const(0), kg.Const(3)),
	)
	p := TriniTPlan(q, 10)
	if len(p.Singletons) != 3 || len(p.JoinGroup) != 0 {
		t.Fatalf("TriniT plan: join=%v singles=%v", p.JoinGroup, p.Singletons)
	}
	if p.K != 10 {
		t.Fatalf("k: got %d", p.K)
	}
}

func TestPlanEmptyOriginalQueryRelaxesAll(t *testing.T) {
	st, _, pa, pb := planStore(t)
	d := st.Dict()
	ty, _ := d.Lookup("type")
	// A pattern with no matches at all.
	missing := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(d.Encode("Z")))
	rules := relax.NewRuleSet()
	// Both patterns have rules; the empty join must push both to relax.
	c, _ := d.Lookup("C")
	pcp := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(c))
	if err := rules.Add(relax.Rule{From: pa, To: pcp, Weight: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := rules.Add(relax.Rule{From: missing, To: pcp, Weight: 0.8}); err != nil {
		t.Fatal(err)
	}
	pl := newPlanner(st, rules)
	q := kg.NewQuery(pa, missing)
	p := pl.Plan(q, 10)
	// The empty pattern must be relaxed. Pattern A's relaxed variant still
	// joins against the empty pattern, so its estimate is unavailable and it
	// stays in the join group — relaxing the empty pattern is what makes the
	// query answerable.
	if len(p.Singletons) != 1 || p.Singletons[0] != 1 {
		t.Fatalf("empty original: singletons %v, want [1]", p.Singletons)
	}
	_ = pb
}

func TestPlanEmptyJoinNonEmptyPatternsRelaxesAll(t *testing.T) {
	// Both patterns have matches but the join is empty (disjoint entity
	// sets): with φ = 0 every pattern with a productive relaxation must be
	// speculated as requiring relaxation.
	st := kg.NewStore(nil)
	add := func(s, o string, sc float64) {
		if err := st.AddSPO(s, "type", o, sc); err != nil {
			t.Fatal(err)
		}
	}
	add("x1", "A", 10)
	add("x2", "A", 8)
	add("y1", "B", 9)
	add("y2", "B", 7)
	add("x1", "C", 5) // C overlaps A's entities
	add("y1", "D", 5) // D overlaps B's entities
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("type")
	mk := func(name string) kg.Pattern {
		id, _ := d.Lookup(name)
		return kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(id))
	}
	rules := relax.NewRuleSet()
	if err := rules.Add(relax.Rule{From: mk("A"), To: mk("D"), Weight: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := rules.Add(relax.Rule{From: mk("B"), To: mk("C"), Weight: 0.8}); err != nil {
		t.Fatal(err)
	}
	pl := newPlanner(st, rules)
	p := pl.Plan(kg.NewQuery(mk("A"), mk("B")), 5)
	if len(p.Singletons) != 2 {
		t.Fatalf("empty join: singletons %v, want both patterns", p.Singletons)
	}
}

func TestPlanKFloor(t *testing.T) {
	st, rules, pa, pb := planStore(t)
	pl := newPlanner(st, rules)
	p := pl.Plan(kg.NewQuery(pa, pb), 0)
	if p.K != 1 {
		t.Fatalf("k floor: got %d want 1", p.K)
	}
}

func TestExplainMentionsDecisions(t *testing.T) {
	st, rules, pa, pb := planStore(t)
	pl := newPlanner(st, rules)
	q := kg.NewQuery(pa, pb)
	p := pl.Plan(q, 50)
	out := pl.Explain(p)
	for _, want := range []string{"query:", "plan:", "[0]", "[1]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "RELAX") {
		t.Fatalf("explain must mention the relaxation decision:\n%s", out)
	}
}

func TestPlanDecisionReasonsPopulated(t *testing.T) {
	st, rules, pa, pb := planStore(t)
	pl := newPlanner(st, rules)
	p := pl.Plan(kg.NewQuery(pa, pb), 10)
	for i, d := range p.Decisions {
		if d.Reason == "" {
			t.Fatalf("decision %d has empty reason", i)
		}
	}
}
