// Package planner implements Spec-QP's speculative query planner: PLANGEN
// (Algorithm 1 of the paper). Given a query, the relaxation rule set, and the
// score-statistics catalog, it predicts for each triple pattern whether that
// pattern's relaxations can contribute answers to the top-k, and partitions
// the query into a join group (patterns executed without relaxations) and
// singletons (patterns whose relaxations are processed by an Incremental
// Merge operator).
package planner

import (
	"fmt"
	"strings"

	"specqp/internal/kg"
	"specqp/internal/relax"
	"specqp/internal/stats"
)

// Plan is a speculative query plan: a partition of the query's patterns into
// one join group and zero or more singletons (Section 3.2's {Q1, Q2, .., Qs}
// with |Q1| ≥ 1 and the rest singletons).
type Plan struct {
	Query kg.Query
	K     int

	// JoinGroup holds pattern indexes executed without relaxations.
	JoinGroup []int
	// Singletons holds pattern indexes whose relaxations are processed.
	Singletons []int

	// Diagnostics for Explain and tests.
	EQk       float64           // expected k-th score of the original query
	EQkOK     bool              // whether the original query reaches k answers
	Decisions []PatternDecision // one per pattern, in query order
}

// PatternDecision records why a pattern was or was not marked for relaxation.
type PatternDecision struct {
	PatternIdx int
	Relax      bool
	Reason     string
	TopRule    relax.Rule
	HasRule    bool
	EQ1        float64 // expected top score of the relaxed query
	EQ1OK      bool
}

// RelaxMask returns the singleton set as a bitmask over pattern indexes.
func (p Plan) RelaxMask() uint32 {
	var m uint32
	for _, i := range p.Singletons {
		m |= 1 << uint(i)
	}
	return m
}

// NumRelaxed returns the number of patterns the plan relaxes.
func (p Plan) NumRelaxed() int { return len(p.Singletons) }

// Planner generates speculative plans.
type Planner struct {
	Catalog *stats.Catalog
	Rules   *relax.RuleSet
}

// New returns a Planner over the given catalog and rule set.
func New(c *stats.Catalog, rs *relax.RuleSet) *Planner {
	return &Planner{Catalog: c, Rules: rs}
}

// Plan runs PLANGEN: it estimates EQ(k) for the original query and, for each
// pattern, EQ'(1) for the query with that pattern replaced by its
// top-weighted relaxation. Patterns with EQ'(1) > EQ(k) become singletons.
//
// Cardinalities follow the paper's estimator: the original query's answer
// count n is taken from the catalog's counter (exact, per footnote 3) and
// its selectivity φ = n / ∏ mᵢ is reused for relaxed variants as
// n' = φ · ∏_{j≠i} mⱼ · m'ᵢ — the m12 = m·m′·φ rule of Section 3.1.2. This
// keeps planning to a single join count per query.
//
// Paper-faithful edge cases:
//   - if the original query cannot produce k answers, EQ(k) is 0, so any
//     productive relaxation qualifies;
//   - if the original query has no answers at all, φ carries no signal; the
//     planner then speculates n' = 1 for any relaxation whose rewritten query
//     could have answers, so every productively relaxable pattern is relaxed
//     (the original join group alone would produce nothing);
//   - only the top-weighted relaxation is probed, because normalisation
//     (Definition 5) makes each relaxation's top score equal its weight.
func (pl *Planner) Plan(q kg.Query, k int) Plan {
	if k < 1 {
		k = 1
	}
	p := Plan{Query: q.Clone(), K: k}
	st := pl.Catalog.Store()

	nQ := pl.Catalog.QueryCount(q)
	cards := make([]float64, len(q.Patterns))
	prodCards := 1.0
	for i, pat := range q.Patterns {
		cards[i] = float64(st.Cardinality(pat))
		prodCards *= cards[i]
	}
	var phi float64
	if prodCards > 0 {
		phi = float64(nQ) / prodCards
	}

	if nQ >= k {
		eqk, okK := pl.Catalog.ExpectedScoreAtRankN(q, nil, nQ, k)
		p.EQk, p.EQkOK = eqk, okK
	}

	for i, pat := range q.Patterns {
		d := PatternDecision{PatternIdx: i}
		rule, ok := pl.Rules.Top(pat)
		d.HasRule = ok
		if !ok {
			d.Reason = "no relaxation rules for pattern"
			p.Decisions = append(p.Decisions, d)
			p.JoinGroup = append(p.JoinGroup, i)
			continue
		}
		d.TopRule = rule

		// The relaxed pattern's match-list cardinality and score density.
		// Plain rules read both from the catalog; chain rules (Section 6
		// extension) materialise the chain's projected answers and fit the
		// two-bucket model over them.
		var relaxedCard float64
		var relaxedDist stats.PiecewiseConst
		var relaxedOK bool
		if rule.IsChain() {
			vs := kg.NewVarSet(q)
			matches := relax.ChainMatches(st, relax.ApplyChain(rule, pat), vs)
			relaxedCard = float64(len(matches))
			if len(matches) > 0 {
				scores := make([]float64, len(matches))
				for mi, m := range matches {
					scores[mi] = m.Score
				}
				if ps, err := stats.FitTwoBucket(scores); err == nil {
					relaxedDist, relaxedOK = ps.Dist(), true
				}
			}
		} else {
			relaxedPat := relax.Apply(rule, pat)
			relaxedCard = float64(st.Cardinality(relaxedPat))
			relaxedDist, _, relaxedOK = pl.Catalog.PatternDist(relaxedPat)
		}

		// n' = φ · ∏_{j≠i} mⱼ · m'ᵢ. With an unanswerable original query
		// (φ == 0) there is no usable selectivity signal: speculate that the
		// relaxation is required whenever the relaxed pattern has matches.
		var nPrime int
		switch {
		case relaxedCard == 0:
			nPrime = 0
		case phi > 0:
			est := phi * relaxedCard
			for j := range cards {
				if j != i {
					est *= cards[j]
				}
			}
			nPrime = int(est)
			if est > 0 && nPrime == 0 {
				nPrime = 1
			}
		default:
			nPrime = 1
		}

		eq1, ok1 := pl.expectedTop(q, i, relaxedDist, relaxedOK, rule.Weight, nPrime)
		d.EQ1, d.EQ1OK = eq1, ok1
		switch {
		case !ok1:
			d.Relax = false
			d.Reason = "top-weighted relaxation yields no answers"
		case eq1 > p.EQk:
			d.Relax = true
			d.Reason = fmt.Sprintf("EQ'(1)=%.4f > EQ(k)=%.4f", eq1, p.EQk)
		default:
			d.Relax = false
			d.Reason = fmt.Sprintf("EQ'(1)=%.4f <= EQ(k)=%.4f", eq1, p.EQk)
		}
		p.Decisions = append(p.Decisions, d)
		if d.Relax {
			p.Singletons = append(p.Singletons, i)
		} else {
			p.JoinGroup = append(p.JoinGroup, i)
		}
	}
	return p
}

// expectedTop estimates EQ'(1): the expected top score of the query with
// pattern i replaced by a relaxation whose score density is relaxedDist
// scaled by weight w, under answer-count estimate n. It returns 0, false
// when the relaxation or any other pattern has no matches or n == 0.
func (pl *Planner) expectedTop(q kg.Query, i int, relaxedDist stats.PiecewiseConst, relaxedOK bool, w float64, n int) (float64, bool) {
	if !relaxedOK || n <= 0 {
		return 0, false
	}
	ds := make([]stats.PiecewiseConst, 0, len(q.Patterns))
	for j, pat := range q.Patterns {
		if j == i {
			ds = append(ds, relaxedDist.Scale(w))
			continue
		}
		d, _, ok := pl.Catalog.PatternDist(pat)
		if !ok {
			return 0, false
		}
		ds = append(ds, d)
	}
	dist := stats.ConvolveAll(ds, pl.Catalog.Buckets())
	return stats.ExpectedAtRank(dist, n, 1), true
}

// Explain renders a human-readable account of the plan's decisions.
func (pl *Planner) Explain(p Plan) string {
	st := pl.Catalog.Store()
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", st.QueryString(p.Query))
	if p.EQkOK {
		fmt.Fprintf(&b, "expected score at rank k=%d: %.4f\n", p.K, p.EQk)
	} else {
		fmt.Fprintf(&b, "original query cannot reach k=%d answers; EQ(k)=0\n", p.K)
	}
	for _, d := range p.Decisions {
		pat := p.Query.Patterns[d.PatternIdx]
		verdict := "join group"
		if d.Relax {
			verdict = "RELAX (incremental merge)"
		}
		fmt.Fprintf(&b, "  [%d] %s → %s: %s\n", d.PatternIdx, st.PatternString(pat), verdict, d.Reason)
		if d.HasRule {
			if d.TopRule.IsChain() {
				parts := make([]string, len(d.TopRule.Chain))
				for ci, cp := range d.TopRule.Chain {
					parts[ci] = st.PatternString(cp)
				}
				fmt.Fprintf(&b, "      top rule: chain %s (w=%.3f)\n", strings.Join(parts, " . "), d.TopRule.Weight)
			} else {
				fmt.Fprintf(&b, "      top rule: %s (w=%.3f)\n", st.PatternString(d.TopRule.To), d.TopRule.Weight)
			}
		}
	}
	fmt.Fprintf(&b, "plan: join group %v, singletons %v\n", p.JoinGroup, p.Singletons)
	return b.String()
}

// TriniTPlan returns the non-speculative plan for q: every pattern is a
// singleton (all relaxations processed), matching Section 2.1.
func TriniTPlan(q kg.Query, k int) Plan {
	p := Plan{Query: q.Clone(), K: k}
	for i := range q.Patterns {
		p.Singletons = append(p.Singletons, i)
	}
	return p
}

// ExactPlan returns the relaxation-free plan for q: every pattern is in the
// join group, so execution is a pure rank join over the original patterns'
// sorted lists and the answers are the exact (unrelaxed) top-k. It is the
// cheapest of the three plan shapes — no Incremental Merge, no relaxed scans
// — which makes it the degraded tier an overloaded server falls back to.
func ExactPlan(q kg.Query, k int) Plan {
	p := Plan{Query: q.Clone(), K: k}
	for i := range q.Patterns {
		p.JoinGroup = append(p.JoinGroup, i)
	}
	return p
}
