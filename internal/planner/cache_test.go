package planner

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"specqp/internal/kg"
)

func TestShapeKeyCanonicalisesVarNames(t *testing.T) {
	a := kg.NewQuery(
		kg.NewPattern(kg.Var("x"), kg.Const(1), kg.Const(2)),
		kg.NewPattern(kg.Var("x"), kg.Const(3), kg.Const(4)),
	)
	b := kg.NewQuery(
		kg.NewPattern(kg.Var("y"), kg.Const(1), kg.Const(2)),
		kg.NewPattern(kg.Var("y"), kg.Const(3), kg.Const(4)),
	)
	if ShapeKey(a, 10) != ShapeKey(b, 10) {
		t.Fatal("renamed variables must share a shape key")
	}
	// Breaking the cross-pattern sharing changes the join structure and must
	// change the key even though per-pattern keys are identical.
	c := kg.NewQuery(
		kg.NewPattern(kg.Var("x"), kg.Const(1), kg.Const(2)),
		kg.NewPattern(kg.Var("z"), kg.Const(3), kg.Const(4)),
	)
	if ShapeKey(a, 10) == ShapeKey(c, 10) {
		t.Fatal("different variable sharing must not share a shape key")
	}
	if ShapeKey(a, 10) == ShapeKey(a, 20) {
		t.Fatal("different k must not share a shape key")
	}
}

func TestPlanCacheReturnsEquivalentPlans(t *testing.T) {
	st, rules, pa, pb := planStore(t)
	pl := newPlanner(st, rules)
	cache := NewPlanCache(pl, 8)

	q := kg.NewQuery(pa, pb)
	direct := pl.Plan(q, 5)
	cached1 := cache.Plan(q, 5)
	cached2 := cache.Plan(q, 5)

	if !reflect.DeepEqual(direct.JoinGroup, cached1.JoinGroup) ||
		!reflect.DeepEqual(direct.Singletons, cached1.Singletons) {
		t.Fatalf("cached plan differs: direct %v/%v cached %v/%v",
			direct.JoinGroup, direct.Singletons, cached1.JoinGroup, cached1.Singletons)
	}
	if !reflect.DeepEqual(cached1.Singletons, cached2.Singletons) {
		t.Fatal("second hit differs from first")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len: got %d want 1", cache.Len())
	}

	// A shape-equal query with renamed variables hits the same entry but
	// carries its own query back out.
	renamed := kg.NewQuery(
		kg.NewPattern(kg.Var("other"), pa.P, pa.O),
		kg.NewPattern(kg.Var("other"), pb.P, pb.O),
	)
	hit := cache.Plan(renamed, 5)
	if cache.Len() != 1 {
		t.Fatalf("renamed query missed the cache: len %d", cache.Len())
	}
	if hit.Query.Patterns[0].S.Name != "other" {
		t.Fatalf("cached plan kept foreign variable name %q", hit.Query.Patterns[0].S.Name)
	}
	if !reflect.DeepEqual(hit.Singletons, cached1.Singletons) {
		t.Fatal("renamed query got a different plan")
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	st, rules, pa, pb := planStore(t)
	cache := NewPlanCache(newPlanner(st, rules), 2)
	q1 := kg.NewQuery(pa)
	q2 := kg.NewQuery(pb)
	q3 := kg.NewQuery(pa, pb)

	cache.Plan(q1, 5)
	cache.Plan(q2, 5)
	cache.Plan(q1, 5) // touch q1 so q2 is the LRU victim
	cache.Plan(q3, 5) // evicts q2
	if cache.Len() != 2 {
		t.Fatalf("cache len: got %d want 2", cache.Len())
	}
	// Re-planning q1 and q3 must not grow the cache (still resident)…
	cache.Plan(q1, 5)
	cache.Plan(q3, 5)
	if cache.Len() != 2 {
		t.Fatalf("resident entries re-inserted: len %d", cache.Len())
	}
	// …while q2 was evicted and re-enters, evicting the new LRU.
	cache.Plan(q2, 5)
	if cache.Len() != 2 {
		t.Fatalf("cache exceeded capacity: len %d", cache.Len())
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	st, rules, pa, pb := planStore(t)
	cache := NewPlanCache(newPlanner(st, rules), 4)
	ref := cache.Plan(kg.NewQuery(pa, pb), 5)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				v := kg.Var(fmt.Sprintf("v%d", (w+rep)%5)) // shape-equal renames
				q := kg.NewQuery(
					kg.NewPattern(v, pa.P, pa.O),
					kg.NewPattern(v, pb.P, pb.O),
				)
				p := cache.Plan(q, 5)
				if !reflect.DeepEqual(p.Singletons, ref.Singletons) {
					errs <- fmt.Errorf("worker %d: plan diverged", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("shape-equal renames created %d entries, want 1", cache.Len())
	}
}
