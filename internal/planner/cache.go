package planner

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"specqp/internal/kg"
)

// ShapeKey returns a canonical key for (q, k): two queries share a key iff
// they have the same constants in the same positions and the same
// cross-pattern variable-sharing structure. Variable names are erased to
// first-occurrence indexes, so 〈?x a b〉.〈?x c d〉 and 〈?y a b〉.〈?y c d〉 share
// a key while 〈?x a b〉.〈?z c d〉 does not. PLANGEN's decisions depend only on
// per-pattern statistics (keyed by constants) and the exact join count
// (keyed by the join structure), so plans are identical within a shape
// class.
func ShapeKey(q kg.Query, k int) string {
	var b strings.Builder
	vars := map[string]int{}
	term := func(t kg.Term) {
		if t.IsVar {
			i, ok := vars[t.Name]
			if !ok {
				i = len(vars)
				vars[t.Name] = i
			}
			b.WriteByte('v')
			b.WriteString(strconv.Itoa(i))
		} else {
			b.WriteByte('#')
			b.WriteString(strconv.FormatUint(uint64(t.ID), 10))
		}
		b.WriteByte(' ')
	}
	for _, p := range q.Patterns {
		term(p.S)
		term(p.P)
		term(p.O)
		b.WriteByte('.')
	}
	b.WriteString("k=")
	b.WriteString(strconv.Itoa(k))
	return b.String()
}

// PlanCache memoises Planner.Plan behind a small LRU keyed by query shape.
// It is safe for concurrent use; planning happens outside the lock, so a
// slow PLANGEN run never blocks cache hits (two goroutines racing on the
// same cold shape may both plan — the results are identical and one wins).
type PlanCache struct {
	pl       *Planner
	capacity int

	mu    sync.Mutex
	order *list.List // front = most recently used
	items map[string]*list.Element
	// gen counts Clear calls. Plans are computed outside the lock, so a
	// plan begun before a Clear (against since-stale statistics) must not
	// be published after it; Plan captures gen before computing and only
	// stores when it is unchanged.
	gen uint64

	// hits/misses count Plan resolutions for the cache hit-ratio gauge; a
	// lost publish race counts as a miss (the plan was computed).
	hits, misses atomic.Int64
}

type planItem struct {
	key  string
	plan Plan
}

// DefaultPlanCacheSize is the LRU capacity when none is given.
const DefaultPlanCacheSize = 128

// NewPlanCache wraps pl with an LRU of the given capacity (<= 0 selects
// DefaultPlanCacheSize).
func NewPlanCache(pl *Planner, capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{
		pl:       pl,
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Planner returns the wrapped planner.
func (c *PlanCache) Planner() *Planner { return c.pl }

// Clear empties the cache. Engines call it when the store's content version
// moves under live ingest: cached plans embed cardinality and
// score-distribution decisions that are stale after an insert.
func (c *PlanCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.order.Init()
	clear(c.items)
}

// Len reports the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Plan returns the plan for q's shape, computing and caching it on a miss.
// The returned plan carries the caller's own query (shape-equal queries may
// use different variable names) and freshly copied slices, so callers may
// mutate it — e.g. through Result.Plan — without corrupting the cache.
func (c *PlanCache) Plan(q kg.Query, k int) Plan {
	p, _ := c.PlanInfo(q, k)
	return p
}

// Stats reports cumulative hit/miss counts (never reset, even by Clear — the
// ratio is a process-lifetime observability signal).
func (c *PlanCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// PlanInfo is Plan with the cache outcome: hit reports whether the plan was
// served from the shape cache — the traced execution records it.
func (c *PlanCache) PlanInfo(q kg.Query, k int) (_ Plan, hit bool) {
	key := ShapeKey(q, k)
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		p := el.Value.(*planItem).plan
		c.mu.Unlock()
		c.hits.Add(1)
		return materialise(p, q), true
	}
	gen := c.gen
	c.mu.Unlock()
	c.misses.Add(1)

	p := c.pl.Plan(q, k)

	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		// Lost the race to another planner; keep the incumbent.
		c.order.MoveToFront(el)
	} else if c.gen == gen {
		// Store a private copy: the plan about to be returned escapes to
		// the caller, who is free to mutate it. A Clear since the compute
		// began means the plan embeds stale statistics — return it to the
		// caller (same outcome as a query started just before the
		// invalidating insert) but never publish it.
		c.items[key] = c.order.PushFront(&planItem{key: key, plan: materialise(p, p.Query)})
		if c.order.Len() > c.capacity {
			last := c.order.Back()
			c.order.Remove(last)
			delete(c.items, last.Value.(*planItem).key)
		}
	}
	c.mu.Unlock()
	return p, false
}

// materialise returns a copy of plan p bound to query q, with its mutable
// slices duplicated — including each decision's chain-rule patterns — so no
// two copies share backing arrays.
func materialise(p Plan, q kg.Query) Plan {
	p.Query = q.Clone()
	p.JoinGroup = append([]int(nil), p.JoinGroup...)
	p.Singletons = append([]int(nil), p.Singletons...)
	p.Decisions = append([]PatternDecision(nil), p.Decisions...)
	for i := range p.Decisions {
		if ch := p.Decisions[i].TopRule.Chain; ch != nil {
			p.Decisions[i].TopRule.Chain = append([]kg.Pattern(nil), ch...)
		}
	}
	return p
}
