package exec

import (
	"math"
	"testing"

	"specqp/internal/kg"
	"specqp/internal/planner"
	"specqp/internal/relax"
	"specqp/internal/stats"
)

// chainWorld: querying 〈?s hasGrandparent ?g〉 joined with a type pattern;
// hasGrandparent triples are scarce, but hasParent chains derive more.
func chainWorld(t *testing.T) (*kg.Store, *relax.RuleSet, kg.Query) {
	t.Helper()
	st := kg.NewStore(nil)
	add := func(s, p, o string, sc float64) {
		if err := st.AddSPO(s, p, o, sc); err != nil {
			t.Fatal(err)
		}
	}
	// Direct grandparent facts: only one, low score.
	add("zed", "hasGrandparent", "gzed", 2)
	add("zed", "rdf:type", "person", 5)
	// Parent chains for alice and bob.
	add("alice", "hasParent", "pa", 10)
	add("pa", "hasParent", "ga", 9)
	add("bob", "hasParent", "pb", 7)
	add("pb", "hasParent", "gb", 6)
	add("alice", "rdf:type", "person", 10)
	add("bob", "rdf:type", "person", 8)
	st.Freeze()
	d := st.Dict()
	hg, _ := d.Lookup("hasGrandparent")
	hp, _ := d.Lookup("hasParent")
	ty, _ := d.Lookup("rdf:type")
	person, _ := d.Lookup("person")

	rules := relax.NewRuleSet()
	err := rules.Add(relax.Rule{
		From: kg.NewPattern(kg.Var("s"), kg.Const(hg), kg.Var("g")),
		Chain: []kg.Pattern{
			kg.NewPattern(kg.Var("s"), kg.Const(hp), kg.Var("m")),
			kg.NewPattern(kg.Var("m"), kg.Const(hp), kg.Var("g")),
		},
		Weight: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := kg.NewQuery(
		kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(person)),
		kg.NewPattern(kg.Var("s"), kg.Const(hg), kg.Var("g")),
	)
	return st, rules, q
}

func TestChainRelaxationTriniT(t *testing.T) {
	st, rules, q := chainWorld(t)
	ex := New(st, rules)
	res := ex.TriniT(q, 10)
	// Answers: zed via the direct fact; alice and bob via the chain.
	if len(res.Answers) != 3 {
		t.Fatalf("answers: got %d want 3", len(res.Answers))
	}
	d := st.Dict()
	alice, _ := d.Lookup("alice")
	// alice: type 10/10 = 1.0; chain avg (10/10 + 9/10)/2 = 0.95, ×0.8 = 0.76
	// → total 1.76, the best answer.
	top := res.Answers[0]
	if top.Binding[0] != alice {
		t.Fatalf("top answer binding: %v", top.Binding)
	}
	if math.Abs(top.Score-1.76) > 1e-9 {
		t.Fatalf("alice score: got %v want 1.76", top.Score)
	}
	if top.Relaxed != 0b10 {
		t.Fatalf("alice relaxed mask: %b want 10", top.Relaxed)
	}
}

func TestChainRelaxationTriniTMatchesNaive(t *testing.T) {
	st, rules, q := chainWorld(t)
	ex := New(st, rules)
	for _, k := range []int{1, 2, 3, 10} {
		tr := ex.TriniT(q, k)
		nv := ex.Naive(q, k, 0)
		if len(tr.Answers) != len(nv.Answers) {
			t.Fatalf("k=%d: TriniT %d vs Naive %d answers", k, len(tr.Answers), len(nv.Answers))
		}
		for i := range tr.Answers {
			if math.Abs(tr.Answers[i].Score-nv.Answers[i].Score) > 1e-9 {
				t.Fatalf("k=%d rank %d: %v vs %v", k, i, tr.Answers[i].Score, nv.Answers[i].Score)
			}
		}
	}
}

func TestChainRelaxationSpecQP(t *testing.T) {
	st, rules, q := chainWorld(t)
	ex := New(st, rules)
	pl := planner.New(stats.NewCatalog(st, 2, nil), rules)
	// Original query has 1 answer; at k=3 the chain must be speculated.
	res := ex.SpecQP(pl, q, 3)
	if got := res.Plan.RelaxMask(); got&0b10 == 0 {
		t.Fatalf("chain pattern not relaxed: mask %b", got)
	}
	if len(res.Answers) != 3 {
		t.Fatalf("answers: got %d want 3", len(res.Answers))
	}
	tr := ex.TriniT(q, 3)
	for i := range tr.Answers {
		if math.Abs(res.Answers[i].Score-tr.Answers[i].Score) > 1e-9 {
			t.Fatalf("rank %d: spec %v vs trinit %v", i, res.Answers[i].Score, tr.Answers[i].Score)
		}
	}
}

func TestChainRelaxationPlannerExplain(t *testing.T) {
	st, rules, q := chainWorld(t)
	pl := planner.New(stats.NewCatalog(st, 2, nil), rules)
	p := pl.Plan(q, 3)
	out := pl.Explain(p)
	if out == "" {
		t.Fatal("empty explain")
	}
	// Chain rendering must not panic and should mention the chain.
	if !containsAll(out, "chain") {
		t.Fatalf("explain does not render the chain rule:\n%s", out)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
