package exec

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"specqp/internal/planner"
	"specqp/internal/stats"
)

func TestRunContextMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	w := newRandomWorld(t, rng, 80, 5)
	ex := New(w.st, w.rules)
	q := w.randomQuery(rng, 2)
	plain := ex.TriniT(q, 5)
	withCtx, err := ex.TriniTContext(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Answers) != len(withCtx.Answers) {
		t.Fatalf("answers: %d vs %d", len(plain.Answers), len(withCtx.Answers))
	}
	for i := range plain.Answers {
		if math.Abs(plain.Answers[i].Score-withCtx.Answers[i].Score) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, plain.Answers[i].Score, withCtx.Answers[i].Score)
		}
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	w := newRandomWorld(t, rng, 80, 5)
	ex := New(w.st, w.rules)
	q := w.randomQuery(rng, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ex.TriniTContext(ctx, q, 1000)
	if err != context.Canceled {
		t.Fatalf("err: %v", err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("cancelled run produced %d answers", len(res.Answers))
	}

	pl := planner.New(stats.NewCatalog(w.st, 2, nil), w.rules)
	if _, err := ex.SpecQPContext(ctx, pl, q, 10); err != context.Canceled {
		t.Fatalf("spec-qp err: %v", err)
	}
}

func TestSpecQPContextSucceeds(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	w := newRandomWorld(t, rng, 80, 5)
	ex := New(w.st, w.rules)
	pl := planner.New(stats.NewCatalog(w.st, 2, nil), w.rules)
	q := w.randomQuery(rng, 2)
	res, err := ex.SpecQPContext(context.Background(), pl, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref := ex.SpecQP(pl, q, 5)
	if len(res.Answers) != len(ref.Answers) {
		t.Fatalf("answers: %d vs %d", len(res.Answers), len(ref.Answers))
	}
}
