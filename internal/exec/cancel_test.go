package exec

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// pollCtx is a context whose Err flips to Canceled after a fixed number of
// polls — a deterministic stand-in for "the client gave up mid-query". The
// operators poll ctx.Err through the abort hook every AbortStride pulls, so
// allowing N polls cancels the run after roughly N strides of work.
type pollCtx struct {
	context.Context
	polls atomic.Int64
	allow int64
}

func (p *pollCtx) Err() error {
	if p.polls.Add(1) > p.allow {
		return context.Canceled
	}
	return nil
}

func (p *pollCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

// TestRunContextCancelMidQuery verifies satellite requirement: cancellation
// is honored inside the operator pull loop, not just between queries. A run
// cancelled after its first abort poll must return promptly, having done a
// small bounded amount of work compared to the full run, and report
// context.Canceled.
func TestRunContextCancelMidQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	w := newRandomWorld(t, rng, 300, 6)
	ex := New(w.st, w.rules)
	q := w.randomQuery(rng, 3)

	full, err := ex.TriniTContext(context.Background(), q, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if full.MemoryObjects < 10 {
		t.Skipf("fixture too small to observe truncation (%d objects)", full.MemoryObjects)
	}

	ctx := &pollCtx{Context: context.Background(), allow: 1}
	trunc, err := ex.TriniTContext(ctx, q, 100000)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if trunc.MemoryObjects >= full.MemoryObjects {
		t.Fatalf("cancelled run did full work: %d vs full %d",
			trunc.MemoryObjects, full.MemoryObjects)
	}
	if len(trunc.Answers) > len(full.Answers) {
		t.Fatalf("cancelled run answers %d > full %d", len(trunc.Answers), len(full.Answers))
	}
}

// TestRunContextCompletionBeatsLateCancel: a run that fills k answers before
// the cancellation lands reports success — completion wins.
func TestRunContextCompletionBeatsLateCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	w := newRandomWorld(t, rng, 80, 5)
	ex := New(w.st, w.rules)
	q := w.randomQuery(rng, 2)

	// Allow a huge number of polls: the run finishes first, and even though
	// the context is by then cancellable, a completed top-k must not be
	// retroactively failed.
	ctx := &pollCtx{Context: context.Background(), allow: 1 << 40}
	res, err := ex.TriniTContext(ctx, q, 1)
	if err != nil {
		t.Fatalf("completed run reported %v", err)
	}
	ref := ex.TriniT(q, 1)
	if len(res.Answers) != len(ref.Answers) {
		t.Fatalf("answers %d vs %d", len(res.Answers), len(ref.Answers))
	}
}
