package exec

import (
	"context"
	"time"

	"specqp/internal/kg"
	"specqp/internal/operators"
	"specqp/internal/planner"
	"specqp/internal/trace"
)

// AnswerEmitFunc receives answers the instant the operator tree proves them
// final — for rank-join plans, the moment the corner bound drops to the
// answer's score, which is typically long before the full top-k is known.
// Returning false stops the execution early; no further operator pulls happen
// after a false return.
type AnswerEmitFunc func(kg.Answer) bool

// RunContextStream is the streaming core every drain path is expressed on:
// it executes plan p, invoking emit for each answer as the operators prove it
// final, while honouring ctx inside the operator pull loops exactly like
// RunContext (the counter's abort hook is polled every operators.AbortStride
// input pulls, so cancellation mid-stream stops within a bounded number of
// probes even when the next answer would require draining an input).
//
// The returned Result accumulates the same answers handed to emit, so batch
// callers and streaming callers observe one sequence by construction. A nil
// emit streams nowhere and reproduces RunContext verbatim. On cancellation
// the partial result — every answer already emitted — is returned together
// with ctx.Err(); an emit returning false truncates with a nil error (the
// consumer chose to stop; nothing failed).
func (ex *Executor) RunContextStream(ctx context.Context, p planner.Plan, emit AnswerEmitFunc) (Result, error) {
	return ex.runContextStream(ctx, p, emit, false)
}

// RunContextTraced is RunContextStream's traced sibling: same plan, same
// answers, same order — operators additionally record per-instance execution
// statistics, compiled into Result.Trace as a plan-shaped tree. Tracing never
// changes what is executed (the oracle tests assert bit-identity); it only
// adds the recording, so traced runs are for explain requests and sampled
// slow-query capture, not the steady-state hot path.
func (ex *Executor) RunContextTraced(ctx context.Context, p planner.Plan, emit AnswerEmitFunc) (Result, error) {
	return ex.runContextStream(ctx, p, emit, true)
}

func (ex *Executor) runContextStream(ctx context.Context, p planner.Plan, emit AnswerEmitFunc, traced bool) (Result, error) {
	c := &operators.Counter{}
	// Installed before buildStream so the prefetch goroutines observe the
	// hook through their creation edge; ctx.Err is safe for concurrent use.
	c.SetAbort(func() bool { return ctx.Err() != nil })
	if traced {
		// Also before buildStream: operators allocate their trace nodes at
		// construction, observing the flag through the same edge.
		c.EnableTracing()
	}
	start := time.Now()
	root, _, stop := ex.buildStream(p, c)
	defer stop()

	answers := make([]kg.Answer, 0, p.K)
	var err error
	for len(answers) < p.K {
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
			break
		}
		e, ok := root.Next()
		if !ok {
			// An aborted operator reports exhaustion; distinguish a genuinely
			// drained stream from a cancelled one so callers always see the
			// context error alongside the partial top-k. A run that filled k
			// answers never reaches this check — completion beats a
			// cancellation that lands after the last answer.
			err = ctx.Err()
			break
		}
		a := kg.Answer{Binding: e.Binding, Score: e.Score, Relaxed: e.Relaxed}
		answers = append(answers, a)
		if emit != nil && !emit(a) {
			break
		}
	}
	res := Result{
		Answers:       answers,
		MemoryObjects: c.Value(),
		ExecTime:      time.Since(start),
		Plan:          p,
	}
	if traced {
		res.Trace = &trace.Trace{
			K:             p.K,
			ExecUS:        res.ExecTime.Microseconds(),
			Answers:       len(answers),
			MemoryObjects: res.MemoryObjects,
			Root:          operators.TraceTree(root),
		}
	}
	return res, err
}

// RunStream executes plan p without a context, emitting each answer as it is
// proven final. It is Run's streaming sibling: same plan, same answers, same
// order — the only difference is when the caller sees them.
func (ex *Executor) RunStream(p planner.Plan, emit AnswerEmitFunc) Result {
	res, _ := ex.RunContextStream(context.Background(), p, emit)
	return res
}

// TriniTContextStream is TriniTContext with incremental emission.
func (ex *Executor) TriniTContextStream(ctx context.Context, q kg.Query, k int, emit AnswerEmitFunc) (Result, error) {
	return ex.RunContextStream(ctx, planner.TriniTPlan(q, k), emit)
}

// ExactContextStream is ExactContext with incremental emission.
func (ex *Executor) ExactContextStream(ctx context.Context, q kg.Query, k int, emit AnswerEmitFunc) (Result, error) {
	return ex.RunContextStream(ctx, planner.ExactPlan(q, k), emit)
}

// SpecQPContextStream is SpecQPContext with incremental emission: planning is
// not interruptible and nothing is emitted during it; answers stream as the
// speculative plan's operators prove them final.
func (ex *Executor) SpecQPContextStream(ctx context.Context, pl PlanSource, q kg.Query, k int, emit AnswerEmitFunc) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{Plan: planner.Plan{Query: q.Clone(), K: k}}, err
	}
	t0 := time.Now()
	p := pl.Plan(q, k)
	planTime := time.Since(t0)
	res, err := ex.RunContextStream(ctx, p, emit)
	res.PlanTime = planTime
	return res, err
}
