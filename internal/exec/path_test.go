package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"specqp/internal/kg"
	"specqp/internal/planner"
	"specqp/internal/relax"
	"specqp/internal/stats"
)

// pathWorld builds a random social graph for path-query tests: the star-join
// workloads elsewhere never exercise joins whose patterns bind different
// variable pairs, so these tests cover the general join path (multi-variable
// bindings, join keys over intermediate variables).
func pathWorld(t *testing.T, rng *rand.Rand, people int) (*kg.Store, *relax.RuleSet, kg.ID, kg.ID) {
	t.Helper()
	st := kg.NewStore(nil)
	d := st.Dict()
	knows := d.Encode("knows")
	admires := d.Encode("admires")
	for i := 0; i < people; i++ {
		from := d.Encode(fmt.Sprintf("p%d", i))
		edges := 1 + rng.Intn(4)
		for e := 0; e < edges; e++ {
			to := d.Encode(fmt.Sprintf("p%d", rng.Intn(people)))
			pred := knows
			if rng.Intn(3) == 0 {
				pred = admires
			}
			if err := st.Add(kg.Triple{S: from, P: pred, O: to, Score: float64(1 + rng.Intn(1000))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Freeze()
	rules := relax.NewRuleSet()
	// knows may relax to admires and vice versa.
	err := rules.Add(relax.Rule{
		From:   kg.NewPattern(kg.Var("a"), kg.Const(knows), kg.Var("b")),
		To:     kg.NewPattern(kg.Var("a"), kg.Const(admires), kg.Var("b")),
		Weight: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = rules.Add(relax.Rule{
		From:   kg.NewPattern(kg.Var("a"), kg.Const(admires), kg.Var("b")),
		To:     kg.NewPattern(kg.Var("a"), kg.Const(knows), kg.Var("b")),
		Weight: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, rules, knows, admires
}

// TestPathQueryTriniTMatchesNaive is the differential test over two-hop path
// queries ?x knows ?y . ?y knows ?z — multi-variable join keys.
func TestPathQueryTriniTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		st, rules, knows, admires := pathWorld(t, rng, 25+rng.Intn(25))
		ex := New(st, rules)
		queries := []kg.Query{
			{Patterns: []kg.Pattern{
				kg.NewPattern(kg.Var("x"), kg.Const(knows), kg.Var("y")),
				kg.NewPattern(kg.Var("y"), kg.Const(knows), kg.Var("z")),
			}},
			{Patterns: []kg.Pattern{
				kg.NewPattern(kg.Var("x"), kg.Const(knows), kg.Var("y")),
				kg.NewPattern(kg.Var("y"), kg.Const(admires), kg.Var("z")),
			}},
			{Patterns: []kg.Pattern{
				kg.NewPattern(kg.Var("x"), kg.Const(knows), kg.Var("y")),
				kg.NewPattern(kg.Var("y"), kg.Const(knows), kg.Var("z")),
				kg.NewPattern(kg.Var("z"), kg.Const(admires), kg.Var("w")),
			}},
		}
		for qi, q := range queries {
			for _, k := range []int{1, 5, 20} {
				tr := ex.TriniT(q, k)
				nv := ex.Naive(q, k, 0)
				if len(tr.Answers) != len(nv.Answers) {
					t.Fatalf("trial %d q%d k=%d: TriniT %d vs Naive %d answers",
						trial, qi, k, len(tr.Answers), len(nv.Answers))
				}
				for i := range tr.Answers {
					if math.Abs(tr.Answers[i].Score-nv.Answers[i].Score) > 1e-9 {
						t.Fatalf("trial %d q%d k=%d rank %d: %v vs %v",
							trial, qi, k, i, tr.Answers[i].Score, nv.Answers[i].Score)
					}
				}
			}
		}
	}
}

// TestPathQuerySpecQPValid checks that Spec-QP on path queries returns
// genuine, correctly scored answers (scores never exceed the best
// derivation) and plans that partition the patterns.
func TestPathQuerySpecQPValid(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	st, rules, knows, _ := pathWorld(t, rng, 40)
	ex := New(st, rules)
	pl := planner.New(stats.NewCatalog(st, 2, nil), rules)
	q := kg.Query{Patterns: []kg.Pattern{
		kg.NewPattern(kg.Var("x"), kg.Const(knows), kg.Var("y")),
		kg.NewPattern(kg.Var("y"), kg.Const(knows), kg.Var("z")),
	}}
	res := ex.SpecQP(pl, q, 10)
	if got := len(res.Plan.JoinGroup) + len(res.Plan.Singletons); got != 2 {
		t.Fatalf("plan covers %d patterns", got)
	}
	nv := ex.Naive(q, 1<<20, 0)
	best := map[string]float64{}
	for _, a := range nv.Answers {
		best[a.Binding.Key()] = a.Score
	}
	for i, a := range res.Answers {
		want, ok := best[a.Binding.Key()]
		if !ok {
			t.Fatalf("rank %d: non-answer", i)
		}
		if a.Score > want+1e-9 {
			t.Fatalf("rank %d: score %v exceeds best derivation %v", i, a.Score, want)
		}
	}
}

// TestPathQueryJoinOnSubjectAndObject exercises a cyclic query where the
// first and last patterns share a variable: ?x knows ?y . ?y knows ?x.
func TestPathQueryCycle(t *testing.T) {
	st := kg.NewStore(nil)
	add := func(s, o string, sc float64) {
		if err := st.AddSPO(s, "knows", o, sc); err != nil {
			t.Fatal(err)
		}
	}
	add("a", "b", 10)
	add("b", "a", 9)
	add("a", "c", 8)
	add("c", "d", 7)
	st.Freeze()
	knows, _ := st.Dict().Lookup("knows")
	q := kg.Query{Patterns: []kg.Pattern{
		kg.NewPattern(kg.Var("x"), kg.Const(knows), kg.Var("y")),
		kg.NewPattern(kg.Var("y"), kg.Const(knows), kg.Var("x")),
	}}
	ex := New(st, relax.NewRuleSet())
	res := ex.TriniT(q, 10)
	// Cycles: (a,b) and (b,a).
	if len(res.Answers) != 2 {
		t.Fatalf("cycles: got %d want 2", len(res.Answers))
	}
	ref := st.Evaluate(q)
	if len(ref) != 2 {
		t.Fatalf("evaluate cycles: got %d want 2", len(ref))
	}
	for i := range ref {
		if math.Abs(res.Answers[i].Score-ref[i].Score) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, res.Answers[i].Score, ref[i].Score)
		}
	}
}
