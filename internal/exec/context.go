package exec

import (
	"context"
	"time"

	"specqp/internal/kg"
	"specqp/internal/operators"
	"specqp/internal/planner"
)

// RunContext executes plan p like Run but honours ctx between answer pulls:
// when the context is cancelled, the partial result gathered so far is
// returned together with ctx.Err(). Cancellation granularity is one top-k
// answer (operators run to the next emission before the check fires), which
// bounds the overshoot to a single rank-join pull chain.
func (ex *Executor) RunContext(ctx context.Context, p planner.Plan) (Result, error) {
	c := &operators.Counter{}
	start := time.Now()
	root, _, stop := ex.buildStream(p, c)
	defer stop()

	answers := make([]kg.Answer, 0, p.K)
	var err error
	for len(answers) < p.K {
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
			break
		}
		e, ok := root.Next()
		if !ok {
			break
		}
		answers = append(answers, kg.Answer{Binding: e.Binding, Score: e.Score, Relaxed: e.Relaxed})
	}
	return Result{
		Answers:       answers,
		MemoryObjects: c.Value(),
		ExecTime:      time.Since(start),
		Plan:          p,
	}, err
}

// TriniTContext is TriniT with context support.
func (ex *Executor) TriniTContext(ctx context.Context, q kg.Query, k int) (Result, error) {
	return ex.RunContext(ctx, planner.TriniTPlan(q, k))
}

// SpecQPContext is SpecQP with context support. Planning itself is not
// interruptible (it is bounded by one exact join count plus histogram
// convolutions); cancellation applies to execution.
func (ex *Executor) SpecQPContext(ctx context.Context, pl PlanSource, q kg.Query, k int) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{Plan: planner.Plan{Query: q.Clone(), K: k}}, err
	}
	t0 := time.Now()
	p := pl.Plan(q, k)
	planTime := time.Since(t0)
	res, err := ex.RunContext(ctx, p)
	res.PlanTime = planTime
	return res, err
}
