package exec

import (
	"context"

	"specqp/internal/kg"
	"specqp/internal/planner"
)

// RunContext executes plan p like Run but honours ctx *inside* the operator
// pull loops, not just between answer pulls: the counter's abort hook is
// polled by the rank joins and Incremental Merges every
// operators.AbortStride input pulls, so a cancelled query returns within a
// bounded number of probes even when a single Next() would otherwise drain
// its inputs (a selective join with no matches, a deep dedup run). On
// cancellation the partial result gathered so far is returned together with
// ctx.Err().
//
// RunContext is RunContextStream with no emission hook — the batch drain is
// expressed on the streaming core, so both paths produce one answer sequence
// by construction.
func (ex *Executor) RunContext(ctx context.Context, p planner.Plan) (Result, error) {
	return ex.RunContextStream(ctx, p, nil)
}

// TriniTContext is TriniT with context support.
func (ex *Executor) TriniTContext(ctx context.Context, q kg.Query, k int) (Result, error) {
	return ex.RunContext(ctx, planner.TriniTPlan(q, k))
}

// ExactContext is Exact with context support.
func (ex *Executor) ExactContext(ctx context.Context, q kg.Query, k int) (Result, error) {
	return ex.RunContext(ctx, planner.ExactPlan(q, k))
}

// SpecQPContext is SpecQP with context support. Planning itself is not
// interruptible (it is bounded by one exact join count plus histogram
// convolutions); cancellation applies to execution.
func (ex *Executor) SpecQPContext(ctx context.Context, pl PlanSource, q kg.Query, k int) (Result, error) {
	return ex.SpecQPContextStream(ctx, pl, q, k, nil)
}
