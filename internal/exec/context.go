package exec

import (
	"context"
	"time"

	"specqp/internal/kg"
	"specqp/internal/operators"
	"specqp/internal/planner"
)

// RunContext executes plan p like Run but honours ctx *inside* the operator
// pull loops, not just between answer pulls: the counter's abort hook is
// polled by the rank joins and Incremental Merges every
// operators.AbortStride input pulls, so a cancelled query returns within a
// bounded number of probes even when a single Next() would otherwise drain
// its inputs (a selective join with no matches, a deep dedup run). On
// cancellation the partial result gathered so far is returned together with
// ctx.Err().
func (ex *Executor) RunContext(ctx context.Context, p planner.Plan) (Result, error) {
	c := &operators.Counter{}
	// Installed before buildStream so the prefetch goroutines observe the
	// hook through their creation edge; ctx.Err is safe for concurrent use.
	c.SetAbort(func() bool { return ctx.Err() != nil })
	start := time.Now()
	root, _, stop := ex.buildStream(p, c)
	defer stop()

	answers := make([]kg.Answer, 0, p.K)
	var err error
	for len(answers) < p.K {
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
			break
		}
		e, ok := root.Next()
		if !ok {
			// An aborted operator reports exhaustion; distinguish a genuinely
			// drained stream from a cancelled one so callers always see the
			// context error alongside the partial top-k. A run that filled k
			// answers never reaches this check — completion beats a
			// cancellation that lands after the last answer.
			err = ctx.Err()
			break
		}
		answers = append(answers, kg.Answer{Binding: e.Binding, Score: e.Score, Relaxed: e.Relaxed})
	}
	return Result{
		Answers:       answers,
		MemoryObjects: c.Value(),
		ExecTime:      time.Since(start),
		Plan:          p,
	}, err
}

// TriniTContext is TriniT with context support.
func (ex *Executor) TriniTContext(ctx context.Context, q kg.Query, k int) (Result, error) {
	return ex.RunContext(ctx, planner.TriniTPlan(q, k))
}

// ExactContext is Exact with context support.
func (ex *Executor) ExactContext(ctx context.Context, q kg.Query, k int) (Result, error) {
	return ex.RunContext(ctx, planner.ExactPlan(q, k))
}

// SpecQPContext is SpecQP with context support. Planning itself is not
// interruptible (it is bounded by one exact join count plus histogram
// convolutions); cancellation applies to execution.
func (ex *Executor) SpecQPContext(ctx context.Context, pl PlanSource, q kg.Query, k int) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{Plan: planner.Plan{Query: q.Clone(), K: k}}, err
	}
	t0 := time.Now()
	p := pl.Plan(q, k)
	planTime := time.Since(t0)
	res, err := ex.RunContext(ctx, p)
	res.PlanTime = planTime
	return res, err
}
