package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"specqp/internal/kg"
	"specqp/internal/planner"
	"specqp/internal/relax"
	"specqp/internal/stats"
)

// randomWorld generates a random typed KG with relaxation rules for
// differential testing of the executors.
type randomWorld struct {
	st    *kg.Store
	rules *relax.RuleSet
	ty    kg.ID
	types []kg.ID
}

func newRandomWorld(t *testing.T, rng *rand.Rand, entities, nTypes int) *randomWorld {
	t.Helper()
	st := kg.NewStore(nil)
	d := st.Dict()
	ty := d.Encode("type")
	types := make([]kg.ID, nTypes)
	for i := range types {
		types[i] = d.Encode(fmt.Sprintf("T%d", i))
	}
	for e := 0; e < entities; e++ {
		ent := d.Encode(fmt.Sprintf("e%d", e))
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			tt := types[rng.Intn(nTypes)]
			score := float64(1 + rng.Intn(1000))
			if err := st.Add(kg.Triple{S: ent, P: ty, O: tt, Score: score}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Freeze()
	rules := relax.NewRuleSet()
	for i := range types {
		from := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(types[i]))
		nRules := rng.Intn(3)
		for r := 0; r < nRules; r++ {
			to := types[rng.Intn(nTypes)]
			if to == types[i] {
				continue
			}
			w := 0.2 + 0.75*rng.Float64()
			rule := relax.Rule{From: from, To: kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(to)), Weight: w}
			if err := rules.Add(rule); err != nil {
				t.Fatal(err)
			}
		}
	}
	return &randomWorld{st: st, rules: rules, ty: ty, types: types}
}

func (w *randomWorld) randomQuery(rng *rand.Rand, np int) kg.Query {
	var pats []kg.Pattern
	seen := map[kg.ID]bool{}
	for len(pats) < np {
		tt := w.types[rng.Intn(len(w.types))]
		if seen[tt] {
			continue
		}
		seen[tt] = true
		pats = append(pats, kg.NewPattern(kg.Var("s"), kg.Const(w.ty), kg.Const(tt)))
	}
	return kg.NewQuery(pats...)
}

// TestTriniTMatchesNaive is the central differential test: the operator
// pipeline with early termination must produce exactly the top-k the naive
// evaluate-everything baseline produces.
func TestTriniTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		w := newRandomWorld(t, rng, 60+rng.Intn(100), 6)
		ex := New(w.st, w.rules)
		for _, np := range []int{1, 2, 3} {
			q := w.randomQuery(rng, np)
			for _, k := range []int{1, 5, 10} {
				tr := ex.TriniT(q, k)
				nv := ex.Naive(q, k, 0)
				if len(tr.Answers) != len(nv.Answers) {
					t.Fatalf("trial %d np=%d k=%d: TriniT %d answers, Naive %d",
						trial, np, k, len(tr.Answers), len(nv.Answers))
				}
				for i := range tr.Answers {
					if math.Abs(tr.Answers[i].Score-nv.Answers[i].Score) > 1e-9 {
						t.Fatalf("trial %d np=%d k=%d rank %d: TriniT %v vs Naive %v",
							trial, np, k, i, tr.Answers[i].Score, nv.Answers[i].Score)
					}
				}
			}
		}
	}
}

// TestSpecQPWithFullRelaxationMatchesTriniT: when the speculative plan
// relaxes every pattern it must be answer-for-answer identical to TriniT.
func TestSpecQPWithFullRelaxationMatchesTriniT(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 15; trial++ {
		w := newRandomWorld(t, rng, 80, 5)
		ex := New(w.st, w.rules)
		q := w.randomQuery(rng, 2)
		k := 5
		full := planner.TriniTPlan(q, k)
		viaPlan := ex.Run(full)
		direct := ex.TriniT(q, k)
		if len(viaPlan.Answers) != len(direct.Answers) {
			t.Fatalf("trial %d: %d vs %d answers", trial, len(viaPlan.Answers), len(direct.Answers))
		}
		for i := range viaPlan.Answers {
			if math.Abs(viaPlan.Answers[i].Score-direct.Answers[i].Score) > 1e-9 {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, viaPlan.Answers[i].Score, direct.Answers[i].Score)
			}
		}
	}
}

// TestSpecQPAnswersSubsetValid: Spec-QP answers must always be genuine
// answers of some relaxed query with correctly computed scores — verified
// against the naive all-relaxations answer table.
func TestSpecQPAnswersScoresValid(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		w := newRandomWorld(t, rng, 80, 5)
		ex := New(w.st, w.rules)
		pl := planner.New(stats.NewCatalog(w.st, 2, nil), w.rules)
		q := w.randomQuery(rng, 2)
		k := 5
		s := ex.SpecQP(pl, q, k)
		nv := ex.Naive(q, 1<<20, 0) // full sorted answer table
		valid := map[string]float64{}
		for _, a := range nv.Answers {
			valid[a.Binding.Key()] = a.Score
		}
		for i, a := range s.Answers {
			want, ok := valid[a.Binding.Key()]
			if !ok {
				t.Fatalf("trial %d: Spec-QP produced a non-answer at rank %d", trial, i)
			}
			// A Spec-QP answer's score can be lower than the best derivation
			// (it may miss a relaxation), but never higher.
			if a.Score > want+1e-9 {
				t.Fatalf("trial %d rank %d: Spec-QP score %v exceeds best derivation %v",
					trial, i, a.Score, want)
			}
		}
	}
}

func TestSpecQPSortedAndBoundedByK(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	w := newRandomWorld(t, rng, 120, 6)
	ex := New(w.st, w.rules)
	pl := planner.New(stats.NewCatalog(w.st, 2, nil), w.rules)
	for _, k := range []int{1, 3, 10, 100} {
		q := w.randomQuery(rng, 2)
		res := ex.SpecQP(pl, q, k)
		if len(res.Answers) > k {
			t.Fatalf("k=%d: got %d answers", k, len(res.Answers))
		}
		for i := 1; i < len(res.Answers); i++ {
			if res.Answers[i].Score > res.Answers[i-1].Score+1e-9 {
				t.Fatalf("k=%d: answers not sorted at %d", k, i)
			}
		}
	}
}

func TestResultMetricsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	w := newRandomWorld(t, rng, 80, 5)
	ex := New(w.st, w.rules)
	pl := planner.New(stats.NewCatalog(w.st, 2, nil), w.rules)
	q := w.randomQuery(rng, 2)

	tr := ex.TriniT(q, 5)
	if tr.MemoryObjects <= 0 {
		t.Fatal("TriniT memory objects not counted")
	}
	if tr.PlanTime != 0 {
		t.Fatal("TriniT must have no planning time")
	}
	s := ex.SpecQP(pl, q, 5)
	if s.PlanTime <= 0 {
		t.Fatal("Spec-QP planning time missing")
	}
	if s.TotalTime() < s.ExecTime {
		t.Fatal("total time must include planning")
	}
	n := ex.Naive(q, 5, 0)
	if n.MemoryObjects <= 0 && len(n.Answers) > 0 {
		t.Fatal("naive memory objects not counted")
	}
}

func TestNaiveLimitCapsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	w := newRandomWorld(t, rng, 80, 5)
	ex := New(w.st, w.rules)
	q := w.randomQuery(rng, 2)
	full := ex.Naive(q, 10, 0)
	limited := ex.Naive(q, 10, 1) // original query only
	if limited.MemoryObjects > full.MemoryObjects {
		t.Fatal("limited naive did more work than full naive")
	}
	// With limit 1 only unrelaxed answers can appear.
	for _, a := range limited.Answers {
		if a.Relaxed != 0 {
			t.Fatal("limit=1 must not produce relaxed answers")
		}
	}
}

func TestRelaxedProvenanceMasks(t *testing.T) {
	// One entity matches only via relaxation; its answer must carry the bit.
	st := kg.NewStore(nil)
	add := func(s, o string, sc float64) {
		if err := st.AddSPO(s, "type", o, sc); err != nil {
			t.Fatal(err)
		}
	}
	add("x", "A", 10)
	add("x", "B", 10)
	add("y", "A", 9)
	add("y", "C", 9) // y is B-like only through C
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("type")
	a, _ := d.Lookup("A")
	b, _ := d.Lookup("B")
	c, _ := d.Lookup("C")
	pb := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(b))
	rules := relax.NewRuleSet()
	if err := rules.Add(relax.Rule{
		From: pb, To: kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(c)), Weight: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	ex := New(st, rules)
	q := kg.NewQuery(kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(a)), pb)
	res := ex.TriniT(q, 10)
	if len(res.Answers) != 2 {
		t.Fatalf("answers: got %d want 2", len(res.Answers))
	}
	var xMask, yMask uint32
	xid, _ := d.Lookup("x")
	for _, ans := range res.Answers {
		if ans.Binding[0] == xid {
			xMask = ans.Relaxed
		} else {
			yMask = ans.Relaxed
		}
	}
	if xMask != 0 {
		t.Fatalf("x answered without relaxation but mask=%b", xMask)
	}
	if yMask != 0b10 {
		t.Fatalf("y relaxed pattern 1 but mask=%b", yMask)
	}
}

func TestEmptyQueryAndNoAnswers(t *testing.T) {
	st := kg.NewStore(nil)
	if err := st.AddSPO("a", "p", "b", 1); err != nil {
		t.Fatal(err)
	}
	st.Freeze()
	rules := relax.NewRuleSet()
	ex := New(st, rules)
	d := st.Dict()
	p, _ := d.Lookup("p")
	q := kg.NewQuery(kg.NewPattern(kg.Var("s"), kg.Const(p), kg.Const(d.Encode("missing"))))
	res := ex.TriniT(q, 5)
	if len(res.Answers) != 0 {
		t.Fatalf("unanswerable query returned %d answers", len(res.Answers))
	}
}
