package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"specqp/internal/kg"
	"specqp/internal/operators"
)

// This file is the safety net for the packed-key / scratch-binding / arena
// refactor: on randomized stores (duplicates included) it checks the
// physical operator pipeline — LeftDeep rank joins over ListScans, and
// IncrementalMerge over weighted relaxation scans — answer-for-answer
// against the Store.Evaluate / EvaluateWeighted oracle.

// randStore builds a random store over a small vocabulary. Roughly a third
// of the trials get duplicate (s,p,o) triples with differing scores, so both
// the dedup and the dedup-free scan paths are exercised.
func randStore(t *testing.T, rng *rand.Rand, triples int) *kg.Store {
	t.Helper()
	st := kg.NewStore(nil)
	for i := 0; i < 16; i++ {
		st.Dict().Encode(fmt.Sprintf("t%d", i))
	}
	add := func(s, p, o kg.ID, sc float64) {
		if err := st.Add(kg.Triple{S: s, P: p, O: o, Score: sc}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < triples; i++ {
		s, p, o := kg.ID(rng.Intn(8)), kg.ID(8+rng.Intn(3)), kg.ID(11+rng.Intn(5))
		add(s, p, o, float64(1+rng.Intn(40)))
		if rng.Intn(3) == 0 {
			add(s, p, o, float64(1+rng.Intn(40))) // duplicate, different score
		}
	}
	st.Freeze()
	return st
}

// randQuery builds a 2–3 pattern query chained through shared variables,
// with constants drawn from the store vocabulary.
func randQuery(rng *rand.Rand) kg.Query {
	n := 2 + rng.Intn(2)
	varNames := []string{"x", "y", "z", "w"}
	var ps []kg.Pattern
	for i := 0; i < n; i++ {
		// Subject: share the previous pattern's object variable to chain.
		s := kg.Var(varNames[i])
		p := kg.Const(kg.ID(8 + rng.Intn(3)))
		var o kg.Term
		if rng.Intn(3) == 0 {
			o = kg.Const(kg.ID(11 + rng.Intn(5)))
		} else {
			o = kg.Var(varNames[i+1])
		}
		if rng.Intn(4) == 0 {
			// Occasionally share the first subject instead of chaining.
			s = kg.Var(varNames[0])
		}
		ps = append(ps, kg.NewPattern(s, p, o))
	}
	return kg.NewQuery(ps...)
}

// answersByKey indexes answers by binding key, asserting no key repeats.
func answersByKey(t *testing.T, as []kg.Answer, label string) map[string]kg.Answer {
	t.Helper()
	m := make(map[string]kg.Answer, len(as))
	for _, a := range as {
		k := a.Binding.Key()
		if _, dup := m[k]; dup {
			t.Fatalf("%s emitted duplicate binding %v", label, a.Binding)
		}
		m[k] = a
	}
	return m
}

func compareAnswerSets(t *testing.T, trial int64, got, want []kg.Answer, label string) {
	t.Helper()
	gm := answersByKey(t, got, label)
	wm := answersByKey(t, want, "oracle")
	if len(gm) != len(wm) {
		t.Fatalf("trial %d %s: got %d answers, oracle %d", trial, label, len(gm), len(wm))
	}
	for k, w := range wm {
		g, ok := gm[k]
		if !ok {
			t.Fatalf("trial %d %s: oracle answer %v missing", trial, label, w.Binding)
		}
		if math.Abs(g.Score-w.Score) > 1e-9 {
			t.Fatalf("trial %d %s: binding %v score %v, oracle %v", trial, label, w.Binding, g.Score, w.Score)
		}
	}
}

// TestPropertyLeftDeepAgainstEvaluateOracle drains a left-deep rank-join
// tree over plain ListScans and compares the complete result set against
// Store.Evaluate.
func TestPropertyLeftDeepAgainstEvaluateOracle(t *testing.T) {
	for trial := int64(0); trial < 60; trial++ {
		rng := rand.New(rand.NewSource(500 + trial))
		st := randStore(t, rng, 60+rng.Intn(120))
		q := randQuery(rng)
		vs := kg.NewVarSet(q)

		streams := make([]operators.Stream, len(q.Patterns))
		vars := make([]map[int]bool, len(q.Patterns))
		for i, p := range q.Patterns {
			streams[i] = operators.NewListScan(st, vs, p, 1, 0, nil)
			vars[i] = operators.PatternBoundVars(vs, p)
		}
		root := operators.LeftDeep(streams, vars, nil)
		entries := operators.Drain(root)
		if !operators.IsSortedDesc(entries) {
			t.Fatalf("trial %d: join output not sorted", trial)
		}
		got := make([]kg.Answer, len(entries))
		for i, e := range entries {
			got[i] = kg.Answer{Binding: e.Binding, Score: e.Score}
		}
		compareAnswerSets(t, trial, got, st.Evaluate(q), "LeftDeep")
	}
}

// TestPropertyIncrementalMergeAgainstWeightedOracle merges a pattern with
// two weighted relaxations and compares against per-pattern EvaluateWeighted
// runs projected onto the original variable set and deduped by max score —
// the max-over-derivations rule the merge implements incrementally.
func TestPropertyIncrementalMergeAgainstWeightedOracle(t *testing.T) {
	for trial := int64(0); trial < 60; trial++ {
		rng := rand.New(rand.NewSource(9000 + trial))
		st := randStore(t, rng, 60+rng.Intn(120))

		orig := kg.NewPattern(kg.Var("x"), kg.Const(kg.ID(8+rng.Intn(3))), kg.Const(kg.ID(11+rng.Intn(5))))
		relaxed := []kg.Pattern{
			// Broaden the object to a fresh variable (out-of-varset: the
			// dedup-on path) and retarget the constant.
			kg.NewPattern(kg.Var("x"), orig.P, kg.Var("free")),
			kg.NewPattern(kg.Var("x"), kg.Const(kg.ID(8+rng.Intn(3))), kg.Const(kg.ID(11+rng.Intn(5)))),
		}
		weights := []float64{0.6, 0.4}

		q := kg.NewQuery(orig)
		vs := kg.NewVarSet(q)
		inputs := []operators.Stream{operators.NewListScan(st, vs, orig, 1, 0, nil)}
		for i, rp := range relaxed {
			inputs = append(inputs, operators.NewListScan(st, vs, rp, weights[i], 1, nil))
		}
		m := operators.NewIncrementalMerge(inputs, nil)
		entries := operators.Drain(m)
		if !operators.IsSortedDesc(entries) {
			t.Fatalf("trial %d: merge output not sorted", trial)
		}
		got := make([]kg.Answer, len(entries))
		for i, e := range entries {
			got[i] = kg.Answer{Binding: e.Binding, Score: e.Score}
		}

		// Oracle: evaluate each pattern as a one-pattern weighted query,
		// project onto the original variable set, keep the max per binding.
		var all []kg.Answer
		project := func(p kg.Pattern, w float64) {
			pq := kg.NewQuery(p)
			pvs := kg.NewVarSet(pq)
			for _, a := range st.EvaluateWeighted(pq, []float64{w}) {
				proj := kg.NewBinding(vs.Len())
				for vi := 0; vi < pvs.Len(); vi++ {
					if oi := vs.Index(pvs.Name(vi)); oi >= 0 {
						proj[oi] = a.Binding[vi]
					}
				}
				all = append(all, kg.Answer{Binding: proj, Score: a.Score})
			}
		}
		project(orig, 1)
		for i, rp := range relaxed {
			project(rp, weights[i])
		}
		want := kg.DedupMax(all)
		compareAnswerSets(t, trial, got, want, "IncrementalMerge")
	}
}
