package exec

import (
	"math/rand"
	"testing"

	"specqp/internal/kg"
	"specqp/internal/operators"
	"specqp/internal/planner"
)

// TestOperatorTreePinnedSnapshot pins the executor's snapshot-isolation
// contract: an operator tree captures one store version at construction, so
// inserts landing between construction and drain — triples that would
// dominate the top-k — change nothing. Before pinning, each operator loaded
// its own snapshot and a racing ingest could leak mixed-version state into
// one tree.
func TestOperatorTreePinnedSnapshot(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		rng := rand.New(rand.NewSource(99))
		w := newRandomWorld(t, rng, 40, 5)
		ex := New(w.st, w.rules)
		ex.Parallel = parallel
		q := kg.NewQuery(
			kg.NewPattern(kg.Var("s"), kg.Const(w.ty), kg.Const(w.types[0])),
			kg.NewPattern(kg.Var("s"), kg.Const(w.ty), kg.Const(w.types[1])),
		)
		plan := planner.TriniTPlan(q, 10)
		want := ex.Run(plan)

		c := &operators.Counter{}
		root, _, stop := ex.buildStream(plan, c)
		// Dominating inserts: every entity now matches both patterns with a
		// score far above the fixture's range. An unpinned tree would emit
		// these first.
		d := w.st.Dict()
		for e := 0; e < 10; e++ {
			ent := d.Encode("late-entity")
			for _, ty := range w.types[:2] {
				if err := w.st.Insert(kg.Triple{S: ent, P: w.ty, O: ty, Score: 1e6}); err != nil {
					t.Fatal(err)
				}
			}
		}
		got := operators.DrainK(root, plan.K)
		stop()
		if len(got) != len(want.Answers) {
			t.Fatalf("parallel=%v: pinned tree returned %d entries, want %d", parallel, len(got), len(want.Answers))
		}
		for i, e := range got {
			if e.Score != want.Answers[i].Score || e.Binding.Compare(want.Answers[i].Binding) != 0 {
				t.Fatalf("parallel=%v: rank %d = %v/%v, want %v/%v",
					parallel, i, e.Binding, e.Score, want.Answers[i].Binding, want.Answers[i].Score)
			}
		}
		// The live store did move: a tree built now must see the new top.
		after := ex.Run(planner.TriniTPlan(q, 10))
		if len(after.Answers) == 0 || after.Answers[0].Score == want.Answers[0].Score {
			t.Fatalf("parallel=%v: post-insert tree did not observe the dominating inserts", parallel)
		}
	}
}
