// Package exec executes query plans over the kg store using the operators
// package. It provides the three engines the evaluation compares:
//
//   - TriniT: the non-speculative baseline — every triple pattern and all of
//     its relaxations flow through an Incremental Merge, joined by rank joins
//     (Section 2.1, Figure 2);
//   - Spec-QP: the speculative plan — the join group is executed as left-deep
//     rank joins over the original patterns' sorted lists, only the
//     singletons get Incremental Merges (Section 3.2.2, Figure 5);
//   - Naive: evaluate every relaxed query completely, merge, sort, cut at k
//     (the strawman costed at 48 queries in the paper's Introduction).
package exec

import (
	"sort"
	"sync"
	"time"

	"specqp/internal/kg"
	"specqp/internal/operators"
	"specqp/internal/planner"
	"specqp/internal/relax"
	"specqp/internal/trace"
)

// Result carries an execution's answers and its efficiency metrics.
type Result struct {
	Answers []kg.Answer
	// MemoryObjects is the paper's memory metric: answer objects created by
	// the operators during this execution.
	MemoryObjects int64
	// PlanTime is the speculative planning overhead (zero for TriniT/Naive).
	PlanTime time.Duration
	// ExecTime is the operator execution time.
	ExecTime time.Duration
	// Plan is the executed plan.
	Plan planner.Plan
	// Trace is the per-operator execution trace — nil unless the run was
	// traced (RunContextTraced); untraced runs pay nothing for it.
	Trace *trace.Trace
}

// Executor runs plans against one store + rule set.
type Executor struct {
	Store kg.Graph
	Rules *relax.RuleSet
	// Parallel executes independent join legs concurrently: legs are
	// constructed on separate goroutines (cardinality probes, match-list and
	// chain-relaxation materialisation overlap), and each leg stream is
	// wrapped in an order-preserving Prefetch so leg production overlaps the
	// rank join's consumption. Answers are bit-identical to sequential
	// execution — Prefetch is observationally identical to its inner stream —
	// but Result.MemoryObjects may exceed the sequential count: prefetched
	// entries the top-k cutoff never consumes are still created and counted.
	Parallel bool
}

// New returns an Executor.
func New(st kg.Graph, rs *relax.RuleSet) *Executor {
	return &Executor{Store: st, Rules: rs}
}

// leg is one independent input pipeline of the left-deep join.
type leg struct {
	stream operators.Stream
	vars   map[int]bool
	card   int
	single bool
}

// buildLeg constructs the pipeline for pattern index i of the plan: a plain
// sorted scan for join-group patterns, an Incremental Merge over the original
// scan plus one weighted scan per relaxation rule for singletons. g is the
// pinned snapshot shared by every leg of the tree.
func (ex *Executor) buildLeg(g kg.Graph, q kg.Query, vs *kg.VarSet, i int, single bool, c *operators.Counter) leg {
	pat := q.Patterns[i]
	if !single {
		return leg{
			stream: operators.NewPatternScan(g, vs, pat, 1, 0, c),
			vars:   operators.PatternBoundVars(vs, pat),
			card:   g.Cardinality(pat),
		}
	}
	mask := uint32(1) << uint(i)
	inputs := []operators.Stream{operators.NewPatternScan(g, vs, pat, 1, 0, c)}
	card := g.Cardinality(pat)
	for _, r := range ex.Rules.For(pat) {
		if r.IsChain() {
			matches := relax.ChainMatches(g, relax.ApplyChain(r, pat), vs)
			inputs = append(inputs, operators.NewAnswerScan(matches, r.Weight, mask, c))
			card += len(matches)
			continue
		}
		rp := relax.Apply(r, pat)
		inputs = append(inputs, operators.NewPatternScan(g, vs, rp, r.Weight, mask, c))
		card += g.Cardinality(rp)
	}
	return leg{
		stream: operators.NewIncrementalMerge(inputs, c),
		vars:   operators.PatternBoundVars(vs, pat),
		card:   card,
		single: true,
	}
}

// buildStream assembles the operator tree for a plan and returns the root
// stream plus a stop function releasing any background prefetchers (call it
// once the stream will no longer be consumed). The join order is join group
// first (cheapest pattern first), then singletons by ascending cardinality —
// a deterministic left-deep order that keeps intermediate results small,
// independent of construction concurrency.
func (ex *Executor) buildStream(p planner.Plan, c *operators.Counter) (operators.Stream, *kg.VarSet, func()) {
	q := p.Query
	vs := kg.NewVarSet(q)

	// One pinned snapshot serves the entire operator tree: every scan,
	// cardinality probe and normalisation constant — across all legs, even
	// when legs are built concurrently — reads the same content version, so
	// a query racing live inserts answers for exactly one store state.
	g := ex.Store.Pin()

	legs := make([]leg, len(p.JoinGroup)+len(p.Singletons))
	build := func(slot int, patIdx int, single bool) {
		legs[slot] = ex.buildLeg(g, q, vs, patIdx, single, c)
	}
	if c.Tracing() {
		// Traced executions additionally stamp each leg's construction wall
		// time on its root trace node; the untraced path takes no time.Now
		// calls and builds the exact same closures.
		inner := build
		build = func(slot int, patIdx int, single bool) {
			t0 := time.Now()
			inner(slot, patIdx, single)
			operators.StampBuild(legs[slot].stream, time.Since(t0).Microseconds())
		}
	}
	if ex.Parallel && len(legs) > 1 {
		var wg sync.WaitGroup
		for slot, i := range p.JoinGroup {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				build(slot, i, false)
			}(slot, i)
		}
		for off, i := range p.Singletons {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				build(slot, i, true)
			}(len(p.JoinGroup)+off, i)
		}
		wg.Wait()
	} else {
		for slot, i := range p.JoinGroup {
			build(slot, i, false)
		}
		for off, i := range p.Singletons {
			build(len(p.JoinGroup)+off, i, true)
		}
	}

	// Deterministic order: join-group legs first, each group sorted by
	// ascending cardinality.
	sort.SliceStable(legs, func(a, b int) bool {
		if legs[a].single != legs[b].single {
			return !legs[a].single
		}
		return legs[a].card < legs[b].card
	})

	streams := make([]operators.Stream, len(legs))
	vars := make([]map[int]bool, len(legs))
	for i, l := range legs {
		streams[i], vars[i] = l.stream, l.vars
	}
	stop := func() {}
	if ex.Parallel && len(streams) > 1 {
		stopCh := make(chan struct{})
		var once sync.Once
		stop = func() { once.Do(func() { close(stopCh) }) }
		for i := range streams {
			streams[i] = operators.NewPrefetch(streams[i], operators.DefaultPrefetchDepth, stopCh)
		}
	}
	return operators.LeftDeep(streams, vars, c), vs, stop
}

// Run executes plan p and returns the top-k answers (k from the plan).
func (ex *Executor) Run(p planner.Plan) Result {
	c := &operators.Counter{}
	start := time.Now()
	root, _, stop := ex.buildStream(p, c)
	// Deferred, not inline: a panic out of the drain must still release the
	// legs' prefetch goroutines, or each one stays blocked on its buffer
	// send for the process lifetime.
	defer stop()
	entries := operators.DrainK(root, p.K)
	elapsed := time.Since(start)

	answers := make([]kg.Answer, len(entries))
	for i, e := range entries {
		answers[i] = kg.Answer{Binding: e.Binding, Score: e.Score, Relaxed: e.Relaxed}
	}
	return Result{
		Answers:       answers,
		MemoryObjects: c.Value(),
		ExecTime:      elapsed,
		Plan:          p,
	}
}

// TriniT executes q with the non-speculative baseline plan.
func (ex *Executor) TriniT(q kg.Query, k int) Result {
	return ex.Run(planner.TriniTPlan(q, k))
}

// Exact executes q with no relaxations at all: every pattern joins as a
// plain sorted scan, so the result is the exact top-k of the unrelaxed
// query. This is the graceful-degradation plan a saturated server falls back
// to — the paper's own semantics make "serve the exact answer only" a
// principled cheaper tier rather than an error.
func (ex *Executor) Exact(q kg.Query, k int) Result {
	return ex.Run(planner.ExactPlan(q, k))
}

// PlanSource is anything that yields a speculative plan for a query: a bare
// planner.Planner or a planner.PlanCache.
type PlanSource interface {
	Plan(q kg.Query, k int) planner.Plan
}

// SpecQP plans q speculatively with pl and executes the resulting plan,
// recording the planning time separately (the paper includes it in total
// runtime; harness code reports PlanTime+ExecTime).
func (ex *Executor) SpecQP(pl PlanSource, q kg.Query, k int) Result {
	t0 := time.Now()
	p := pl.Plan(q, k)
	planTime := time.Since(t0)
	res := ex.Run(p)
	res.PlanTime = planTime
	return res
}

// Naive evaluates every relaxed query in the enumeration space completely,
// merges with max-score dedup, sorts, and returns the top-k. limit caps the
// number of relaxed queries evaluated (0 = all); memory objects count every
// materialised answer.
func (ex *Executor) Naive(q kg.Query, k, limit int) Result {
	start := time.Now()
	origVS := kg.NewVarSet(q)
	// One pin per Naive call: every relaxed query evaluates against the same
	// content version.
	g := ex.Store.Pin()
	var all []kg.Answer
	var objects int64
	for _, rq := range ex.Rules.Enumerate(q, limit) {
		var mask uint32
		for i, ri := range rq.Applied {
			if ri >= 0 {
				mask |= 1 << uint(i)
			}
		}
		answers := g.EvaluateWeighted(rq.Query, rq.PatternWeights)
		objects += int64(len(answers))
		// Chain relaxations introduce existential variables; project every
		// answer onto the original query's variable set so answers from
		// different rewrites are comparable and deduplicable.
		rqVS := kg.NewVarSet(rq.Query)
		for _, a := range answers {
			proj := kg.NewBinding(origVS.Len())
			for vi := 0; vi < rqVS.Len(); vi++ {
				if oi := origVS.Index(rqVS.Name(vi)); oi >= 0 {
					proj[oi] = a.Binding[vi]
				}
			}
			all = append(all, kg.Answer{Binding: proj, Score: a.Score, Relaxed: mask})
		}
	}
	all = kg.DedupMax(all)
	kg.SortAnswers(all)
	if len(all) > k {
		all = all[:k]
	}
	return Result{
		Answers:       all,
		MemoryObjects: objects,
		ExecTime:      time.Since(start),
		Plan:          planner.Plan{Query: q.Clone(), K: k},
	}
}

// TotalTime returns planning plus execution time.
func (r Result) TotalTime() time.Duration { return r.PlanTime + r.ExecTime }
