package harness

import (
	"sync"
	"testing"

	"specqp/internal/datagen"
	"specqp/internal/metrics"
)

// The shape tests assert, on a reduced but paper-shaped workload, the
// qualitative claims of the evaluation section — the properties that define
// a successful reproduction. They use loose thresholds so normal variance
// across machines does not flake, while genuine regressions (estimator bugs,
// operator over-reads) fail loudly.

var (
	shapeOnce sync.Once
	shapeOuts []Outcome
	shapeErr  error
)

func shapeOutcomes(t *testing.T) []Outcome {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode")
	}
	shapeOnce.Do(func() {
		ds, err := datagen.XKG(datagen.XKGConfig{Seed: 1, Entities: 8000, Queries: 39})
		if err != nil {
			shapeErr = err
			return
		}
		shapeOuts = NewRunner(ds).RunAll()
	})
	if shapeErr != nil {
		t.Fatal(shapeErr)
	}
	return shapeOuts
}

// Precision must be reasonable at k=10 and must not degrade as k grows
// (Table 2's trend).
func TestShapePrecisionRisesWithK(t *testing.T) {
	rows := Table2(shapeOutcomes(t))
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].Precision < 0.55 {
		t.Fatalf("k=10 precision %0.2f below floor", rows[0].Precision)
	}
	if rows[2].Precision < rows[0].Precision-0.05 {
		t.Fatalf("precision degraded with k: %v", rows)
	}
	if rows[2].Precision < 0.8 {
		t.Fatalf("k=20 precision %0.2f below floor", rows[2].Precision)
	}
}

// Spec-QP must save memory in aggregate and for the large majority of
// queries. (Per query it can lose: an under-relaxed plan may dig deep into
// the original sorted lists where TriniT's merges terminate early — the
// price of a misprediction. The paper's Figures 6–9 report group averages.)
func TestShapeMemorySavesInAggregate(t *testing.T) {
	var tTotal, sTotal int64
	worse, n := 0, 0
	for _, o := range shapeOutcomes(t) {
		if o.SpecQP.MemoryObjects > o.TriniT.MemoryObjects {
			worse++
		}
		n++
		tTotal += o.TriniT.MemoryObjects
		sTotal += o.SpecQP.MemoryObjects
	}
	if sTotal >= tTotal {
		t.Fatalf("no aggregate memory savings: S=%d T=%d", sTotal, tTotal)
	}
	if frac := float64(worse) / float64(n); frac > 0.3 {
		t.Fatalf("%.0f%% of (query,k) pairs used more memory than TriniT", 100*frac)
	}
}

// When Spec-QP relaxes every pattern its plan equals TriniT's, so answers
// and memory must match exactly (the paper: "the memory consumption is the
// same as for TriniT").
func TestShapeAllRelaxedMatchesTriniT(t *testing.T) {
	n := 0
	for _, o := range shapeOutcomes(t) {
		if metrics.CountBits(o.PredictedMask) != o.NumTP {
			continue
		}
		n++
		if o.SpecQP.MemoryObjects != o.TriniT.MemoryObjects {
			t.Fatalf("query %d k=%d all-relaxed: S mem %d != T mem %d",
				o.QueryIdx, o.K, o.SpecQP.MemoryObjects, o.TriniT.MemoryObjects)
		}
		if o.Precision != 1 {
			t.Fatalf("query %d k=%d all-relaxed: precision %v != 1",
				o.QueryIdx, o.K, o.Precision)
		}
	}
	if n == 0 {
		t.Fatal("workload produced no all-relaxed plans; shape test vacuous")
	}
}

// The biggest savings must come from queries whose plans relax nothing
// (Figure 7's leftmost group).
func TestShapeZeroRelaxedGroupSavesMost(t *testing.T) {
	bars := FigureByRelaxed(shapeOutcomes(t))
	var zero, full *FigureBar
	for i := range bars {
		b := &bars[i]
		if b.K != 10 {
			continue
		}
		if b.Group == 0 && zero == nil {
			zero = b
		}
		if b.Group >= 3 {
			full = b
		}
	}
	if zero == nil {
		t.Skip("no zero-relaxed group at k=10 in this seed")
	}
	if zero.MemRatio() < 1.5 {
		t.Fatalf("zero-relaxed group memX %0.2f too small", zero.MemRatio())
	}
	if full != nil && zero.MemRatio() < full.MemRatio() {
		t.Fatalf("zero-relaxed memX %0.2f below all-relaxed %0.2f",
			zero.MemRatio(), full.MemRatio())
	}
}

// Score errors must shrink as k grows (Table 4's trend).
func TestShapeScoreErrorShrinksWithK(t *testing.T) {
	rows := Table4(shapeOutcomes(t))
	byTP := map[int]map[int]float64{}
	for _, r := range rows {
		if byTP[r.NumTP] == nil {
			byTP[r.NumTP] = map[int]float64{}
		}
		byTP[r.NumTP][r.K] = r.Mean
	}
	for tp, byK := range byTP {
		if byK[20] > byK[10]+0.08 {
			t.Fatalf("tp=%d: score error grew with k: k10=%v k20=%v", tp, byK[10], byK[20])
		}
	}
}

// Prediction accuracy must be perfect for the all-relaxations-required group
// (the paper: "we were able to identify the requirement of all the
// relaxations in such a scenario").
func TestShapeAllRequiredPredicted(t *testing.T) {
	for _, c := range Table3(shapeOutcomes(t)) {
		if c.Required == 4 && c.Exact != c.Total {
			t.Fatalf("k=%d all-required group: %d/%d exact", c.K, c.Exact, c.Total)
		}
	}
}
