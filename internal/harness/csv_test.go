package harness

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func TestWriteFigureCSV(t *testing.T) {
	bars := FigureByTP(fakeOutcomes())
	var buf bytes.Buffer
	if err := WriteFigureCSV(&buf, "tp", bars); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(bars)+1 {
		t.Fatalf("rows: got %d want %d", len(recs), len(bars)+1)
	}
	if recs[0][1] != "tp" {
		t.Fatalf("header: %v", recs[0])
	}
	// Every data row parses numerically.
	for _, rec := range recs[1:] {
		for col, v := range rec {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				t.Fatalf("column %d value %q not numeric", col, v)
			}
		}
	}
}

func TestWriteOutcomesCSV(t *testing.T) {
	outs := fakeOutcomes()
	var buf bytes.Buffer
	if err := WriteOutcomesCSV(&buf, outs); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(outs)+1 {
		t.Fatalf("rows: got %d want %d", len(recs), len(outs)+1)
	}
	// The exact-match column reflects the outcome.
	hdr := recs[0]
	var emCol int
	for i, h := range hdr {
		if h == "exact_match" {
			emCol = i
		}
	}
	for i, o := range outs {
		want := strconv.FormatBool(o.ExactMatch)
		if recs[i+1][emCol] != want {
			t.Fatalf("row %d exact_match: got %q want %q", i, recs[i+1][emCol], want)
		}
	}
}
