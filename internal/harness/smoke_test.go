package harness

import (
	"fmt"
	"os"
	"testing"
	"time"

	"specqp/internal/datagen"
)

func TestSmokeXKG(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t0 := time.Now()
	ds, err := datagen.XKG(datagen.XKGConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("xkg gen: %v, triples=%d queries=%d rules=%d\n", time.Since(t0), ds.Store.Len(), len(ds.Queries), ds.Rules.Len())
	r := NewRunner(ds)
	t1 := time.Now()
	o := r.RunQuery(0, 10)
	fmt.Printf("q0 k=10: %v prec=%.2f Tt=%v St=%v Tmem=%d Smem=%d req=%b pred=%b\n",
		time.Since(t1), o.Precision, o.TriniT.TotalTime(), o.SpecQP.TotalTime(), o.TriniT.MemoryObjects, o.SpecQP.MemoryObjects, o.RequiredMask, o.PredictedMask)
	t2 := time.Now()
	outs := r.RunAll()
	fmt.Printf("runall: %v (%d outcomes)\n", time.Since(t2), len(outs))
	PrintTable2(os.Stdout, "xkg", Table2(outs))
	PrintTable3(os.Stdout, "xkg", Table3(outs))
	PrintTable4(os.Stdout, "xkg", Table4(outs))
	PrintFigure(os.Stdout, "Fig6", "#TP", FigureByTP(outs))
	PrintFigure(os.Stdout, "Fig7", "#TPrelaxed", FigureByRelaxed(outs))
}
