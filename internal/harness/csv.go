package harness

import (
	"encoding/csv"
	"fmt"
	"io"

	"specqp/internal/metrics"
)

// WriteFigureCSV emits a figure series as CSV (one row per bar) for external
// plotting: k, group, queries, trinit_ms, specqp_ms, speedup, trinit_mem,
// specqp_mem, mem_ratio.
func WriteFigureCSV(w io.Writer, groupLabel string, bars []FigureBar) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"k", groupLabel, "queries", "trinit_ms", "specqp_ms", "speedup",
		"trinit_mem", "specqp_mem", "mem_ratio",
	}); err != nil {
		return err
	}
	for _, b := range bars {
		rec := []string{
			fmt.Sprint(b.K),
			fmt.Sprint(b.Group),
			fmt.Sprint(b.Queries),
			fmt.Sprintf("%.4f", float64(b.TriniTTime.Microseconds())/1000),
			fmt.Sprintf("%.4f", float64(b.SpecQPTime.Microseconds())/1000),
			fmt.Sprintf("%.4f", b.Speedup()),
			fmt.Sprintf("%.1f", b.TriniTMem),
			fmt.Sprintf("%.1f", b.SpecQPMem),
			fmt.Sprintf("%.4f", b.MemRatio()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteOutcomesCSV emits the raw per-(query,k) outcomes for offline
// analysis: every quality and efficiency measure the tables aggregate.
func WriteOutcomesCSV(w io.Writer, outs []Outcome) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"query", "k", "num_tp", "precision", "score_err_mean", "score_err_std",
		"required_relaxations", "predicted_relaxations", "exact_match",
		"trinit_ms", "specqp_plan_ms", "specqp_exec_ms",
		"trinit_mem", "specqp_mem",
	}); err != nil {
		return err
	}
	for _, o := range outs {
		rec := []string{
			fmt.Sprint(o.QueryIdx),
			fmt.Sprint(o.K),
			fmt.Sprint(o.NumTP),
			fmt.Sprintf("%.4f", o.Precision),
			fmt.Sprintf("%.4f", o.ScoreErrMean),
			fmt.Sprintf("%.4f", o.ScoreErrStd),
			fmt.Sprint(metrics.CountBits(o.RequiredMask)),
			fmt.Sprint(metrics.CountBits(o.PredictedMask)),
			fmt.Sprint(o.ExactMatch),
			fmt.Sprintf("%.4f", float64(o.TriniT.TotalTime().Microseconds())/1000),
			fmt.Sprintf("%.4f", float64(o.SpecQP.PlanTime.Microseconds())/1000),
			fmt.Sprintf("%.4f", float64(o.SpecQP.ExecTime.Microseconds())/1000),
			fmt.Sprint(o.TriniT.MemoryObjects),
			fmt.Sprint(o.SpecQP.MemoryObjects),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
