// Package harness runs the paper's experimental evaluation end to end: for
// every workload query and every k it executes both TriniT (the true top-k
// baseline) and Spec-QP, gathers the quality and efficiency metrics of
// Section 4.3, and renders the same tables and figure series the paper
// reports (Tables 2–4, Figures 6–9).
package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"specqp/internal/datagen"
	"specqp/internal/exec"
	"specqp/internal/metrics"
	"specqp/internal/planner"
	"specqp/internal/relax"
	"specqp/internal/stats"
)

// Outcome captures one (query, k) comparison between TriniT and Spec-QP.
type Outcome struct {
	QueryIdx int
	K        int
	NumTP    int

	TriniT exec.Result
	SpecQP exec.Result

	Precision    float64
	ScoreErrMean float64
	ScoreErrStd  float64

	RequiredMask  uint32 // patterns whose relaxations contribute to true top-k
	PredictedMask uint32 // patterns Spec-QP chose to relax
	ExactMatch    bool
}

// Runner executes the evaluation over one dataset.
type Runner struct {
	Dataset *datagen.Dataset
	Exec    *exec.Executor
	Planner *planner.Planner
	Ks      []int
	// Runs is the paper's measurement protocol: "To have a warm cache, we
	// conducted 5 consecutive runs for each query and considered the average
	// of the last 3 runs". Runs <= 1 measures a single execution; Runs >= 3
	// averages the timings of the last Runs-2 executions (answers and memory
	// objects are identical across runs, so only times are averaged).
	Runs int
}

// NewRunner wires a runner with the paper's configuration: two-bucket
// histograms, exact join selectivities, k ∈ {10, 15, 20}.
func NewRunner(ds *datagen.Dataset) *Runner {
	return NewRunnerWith(ds, 2, nil, []int{10, 15, 20})
}

// NewRunnerWith allows overriding the histogram resolution, the cardinality
// counter (nil = exact) and the k values — used by the ablation benchmarks.
func NewRunnerWith(ds *datagen.Dataset, buckets int, counter stats.Counter, ks []int) *Runner {
	cat := stats.NewCatalog(ds.Store, buckets, counter)
	return &Runner{
		Dataset: ds,
		Exec:    exec.New(ds.Store, ds.Rules),
		Planner: planner.New(cat, ds.Rules),
		Ks:      ks,
	}
}

// Rules returns the dataset's rule set (convenience for callers).
func (r *Runner) Rules() *relax.RuleSet { return r.Dataset.Rules }

// RunQuery executes one workload query at one k under both engines,
// following the configured measurement protocol (see Runs).
func (r *Runner) RunQuery(qi, k int) Outcome {
	qs := r.Dataset.Queries[qi]
	runs := r.Runs
	if runs < 1 {
		runs = 1
	}
	var t, s exec.Result
	var tTimes, sTimes []time.Duration
	for i := 0; i < runs; i++ {
		t = r.Exec.TriniT(qs.Query, k)
		s = r.Exec.SpecQP(r.Planner, qs.Query, k)
		tTimes = append(tTimes, t.TotalTime())
		sTimes = append(sTimes, s.TotalTime())
	}
	if runs >= 3 {
		// Average the warm runs (drop the first two), storing the averaged
		// time into ExecTime with PlanTime zeroed so TotalTime reports it.
		t.ExecTime, t.PlanTime = avgTail(tTimes, runs-2), 0
		s.ExecTime, s.PlanTime = avgTail(sTimes, runs-2), 0
	}

	o := Outcome{
		QueryIdx: qi,
		K:        k,
		NumTP:    len(qs.Query.Patterns),
		TriniT:   t,
		SpecQP:   s,
	}
	o.Precision = metrics.Precision(s.Answers, t.Answers, k)
	o.ScoreErrMean, o.ScoreErrStd = metrics.ScoreError(s.Answers, t.Answers, k)
	o.RequiredMask = metrics.RequiredRelaxations(t.Answers, k)
	o.PredictedMask = s.Plan.RelaxMask()
	o.ExactMatch = metrics.PredictionExact(o.PredictedMask, o.RequiredMask)
	return o
}

// RunAll executes the whole workload for every configured k.
func (r *Runner) RunAll() []Outcome {
	var out []Outcome
	for _, k := range r.Ks {
		for qi := range r.Dataset.Queries {
			out = append(out, r.RunQuery(qi, k))
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Table 2: precision (and recall) per k.

// Table2Row is the per-k average precision over the workload.
type Table2Row struct {
	K         int
	Precision float64
}

// Table2 aggregates outcomes into the paper's Table 2.
func Table2(outcomes []Outcome) []Table2Row {
	byK := map[int][]float64{}
	for _, o := range outcomes {
		byK[o.K] = append(byK[o.K], o.Precision)
	}
	var rows []Table2Row
	for k, ps := range byK {
		rows = append(rows, Table2Row{K: k, Precision: mean(ps)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].K < rows[j].K })
	return rows
}

// ---------------------------------------------------------------------------
// Table 3: prediction accuracy grouped by #relaxations required.

// Table3Cell counts exact predictions vs total for one (k, required) group.
type Table3Cell struct {
	K        int
	Required int // number of patterns requiring relaxation (ground truth)
	Exact    int // queries where Spec-QP identified exactly those
	Total    int
}

// Table3 aggregates outcomes into the paper's Table 3.
func Table3(outcomes []Outcome) []Table3Cell {
	type key struct{ k, req int }
	cells := map[key]*Table3Cell{}
	for _, o := range outcomes {
		req := metrics.CountBits(o.RequiredMask)
		kk := key{o.K, req}
		c := cells[kk]
		if c == nil {
			c = &Table3Cell{K: o.K, Required: req}
			cells[kk] = c
		}
		c.Total++
		if o.ExactMatch {
			c.Exact++
		}
	}
	var rows []Table3Cell
	for _, c := range cells {
		rows = append(rows, *c)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Required != rows[j].Required {
			return rows[i].Required < rows[j].Required
		}
		return rows[i].K < rows[j].K
	})
	return rows
}

// ---------------------------------------------------------------------------
// Table 4: average score error grouped by #TP.

// Table4Cell is the mean score deviation ± std for one (k, #TP) group.
type Table4Cell struct {
	K     int
	NumTP int
	Mean  float64
	Std   float64
	// PctOfMax expresses Mean as a percentage of the maximum possible score
	// (#TP), matching the percentages the paper quotes in brackets.
	PctOfMax float64
	Total    int
}

// Table4 aggregates outcomes into the paper's Table 4.
func Table4(outcomes []Outcome) []Table4Cell {
	type key struct{ k, tp int }
	agg := map[key][]float64{}
	stds := map[key][]float64{}
	for _, o := range outcomes {
		kk := key{o.K, o.NumTP}
		agg[kk] = append(agg[kk], o.ScoreErrMean)
		stds[kk] = append(stds[kk], o.ScoreErrStd)
	}
	var rows []Table4Cell
	for kk, ms := range agg {
		m := mean(ms)
		rows = append(rows, Table4Cell{
			K:        kk.k,
			NumTP:    kk.tp,
			Mean:     m,
			Std:      mean(stds[kk]),
			PctOfMax: 100 * m / float64(kk.tp),
			Total:    len(ms),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].NumTP != rows[j].NumTP {
			return rows[i].NumTP < rows[j].NumTP
		}
		return rows[i].K < rows[j].K
	})
	return rows
}

// ---------------------------------------------------------------------------
// Figures 6–9: runtimes and memory objects grouped by #TP (Figs 6, 8) or by
// #TP relaxed by Spec-QP (Figs 7, 9).

// FigureBar is one bar pair (TriniT vs Spec-QP) in a figure series.
type FigureBar struct {
	K       int
	Group   int // #TP or #TP-relaxed depending on the figure
	Queries int

	TriniTTime time.Duration
	SpecQPTime time.Duration
	TriniTMem  float64
	SpecQPMem  float64
}

// Speedup returns TriniT time divided by Spec-QP time (>1 means Spec-QP wins).
func (b FigureBar) Speedup() float64 {
	if b.SpecQPTime == 0 {
		return 0
	}
	return float64(b.TriniTTime) / float64(b.SpecQPTime)
}

// MemRatio returns TriniT memory over Spec-QP memory (>1 means Spec-QP wins).
func (b FigureBar) MemRatio() float64 {
	if b.SpecQPMem == 0 {
		return 0
	}
	return b.TriniTMem / b.SpecQPMem
}

// FigureByTP aggregates runtimes and memory by number of triple patterns
// (Figure 6 for XKG, Figure 8 for Twitter).
func FigureByTP(outcomes []Outcome) []FigureBar {
	return figure(outcomes, func(o Outcome) int { return o.NumTP })
}

// FigureByRelaxed aggregates by the number of patterns Spec-QP relaxed
// (Figure 7 for XKG, Figure 9 for Twitter).
func FigureByRelaxed(outcomes []Outcome) []FigureBar {
	return figure(outcomes, func(o Outcome) int { return metrics.CountBits(o.PredictedMask) })
}

func figure(outcomes []Outcome, group func(Outcome) int) []FigureBar {
	type key struct{ k, g int }
	type acc struct {
		n            int
		tTime, sTime time.Duration
		tMem, sMem   float64
	}
	m := map[key]*acc{}
	for _, o := range outcomes {
		kk := key{o.K, group(o)}
		a := m[kk]
		if a == nil {
			a = &acc{}
			m[kk] = a
		}
		a.n++
		a.tTime += o.TriniT.TotalTime()
		a.sTime += o.SpecQP.TotalTime()
		a.tMem += float64(o.TriniT.MemoryObjects)
		a.sMem += float64(o.SpecQP.MemoryObjects)
	}
	var bars []FigureBar
	for kk, a := range m {
		bars = append(bars, FigureBar{
			K:          kk.k,
			Group:      kk.g,
			Queries:    a.n,
			TriniTTime: a.tTime / time.Duration(a.n),
			SpecQPTime: a.sTime / time.Duration(a.n),
			TriniTMem:  a.tMem / float64(a.n),
			SpecQPMem:  a.sMem / float64(a.n),
		})
	}
	sort.Slice(bars, func(i, j int) bool {
		if bars[i].K != bars[j].K {
			return bars[i].K < bars[j].K
		}
		return bars[i].Group < bars[j].Group
	})
	return bars
}

// ---------------------------------------------------------------------------
// Rendering.

// PrintTable2 renders Table 2 in the paper's layout.
func PrintTable2(w io.Writer, name string, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2 — Precision (and Recall), dataset %s\n", name)
	fmt.Fprintf(w, "  %-4s %-10s\n", "k", "precision")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-4d %-10.2f\n", r.K, r.Precision)
	}
}

// PrintTable3 renders Table 3 in the paper's layout (exact(total) cells).
func PrintTable3(w io.Writer, name string, rows []Table3Cell) {
	fmt.Fprintf(w, "Table 3 — Prediction accuracy, dataset %s\n", name)
	ks := sortedKs(rowsKs3(rows))
	byReq := map[int]map[int]Table3Cell{}
	var reqs []int
	for _, r := range rows {
		if byReq[r.Required] == nil {
			byReq[r.Required] = map[int]Table3Cell{}
			reqs = append(reqs, r.Required)
		}
		byReq[r.Required][r.K] = r
	}
	sort.Ints(reqs)
	fmt.Fprintf(w, "  %-28s", "queries requiring")
	for _, k := range ks {
		fmt.Fprintf(w, " k=%-9d", k)
	}
	fmt.Fprintln(w)
	for _, req := range reqs {
		fmt.Fprintf(w, "  %-28s", fmt.Sprintf("%d relaxation(s)", req))
		for _, k := range ks {
			if c, ok := byReq[req][k]; ok {
				fmt.Fprintf(w, " %-10s", fmt.Sprintf("%d(%d)", c.Exact, c.Total))
			} else {
				fmt.Fprintf(w, " %-10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// PrintTable4 renders Table 4 in the paper's layout.
func PrintTable4(w io.Writer, name string, rows []Table4Cell) {
	fmt.Fprintf(w, "Table 4 — Average score deviation, dataset %s\n", name)
	fmt.Fprintf(w, "  %-4s %-5s %-22s\n", "k", "#TP", "mean(pct)±std")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-4d %-5d %.3f(%.0f%%)±%.3f\n", r.K, r.NumTP, r.Mean, r.PctOfMax, r.Std)
	}
}

// PrintFigure renders a figure series (runtime and memory bars).
func PrintFigure(w io.Writer, title, groupLabel string, bars []FigureBar) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  %-4s %-12s %-8s %-12s %-12s %-8s %-12s %-12s %-8s\n",
		"k", groupLabel, "queries", "T-time", "S-time", "spdup", "T-mem", "S-mem", "memX")
	for _, b := range bars {
		fmt.Fprintf(w, "  %-4d %-12d %-8d %-12s %-12s %-8.2f %-12.0f %-12.0f %-8.2f\n",
			b.K, b.Group, b.Queries,
			b.TriniTTime.Round(time.Microsecond), b.SpecQPTime.Round(time.Microsecond),
			b.Speedup(), b.TriniTMem, b.SpecQPMem, b.MemRatio())
	}
}

func rowsKs3(rows []Table3Cell) []int {
	seen := map[int]bool{}
	var ks []int
	for _, r := range rows {
		if !seen[r.K] {
			seen[r.K] = true
			ks = append(ks, r.K)
		}
	}
	return ks
}

func sortedKs(ks []int) []int {
	sort.Ints(ks)
	return ks
}

// avgTail averages the last n entries of times.
func avgTail(times []time.Duration, n int) time.Duration {
	if n <= 0 || n > len(times) {
		n = len(times)
	}
	var sum time.Duration
	for _, d := range times[len(times)-n:] {
		sum += d
	}
	return sum / time.Duration(n)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
