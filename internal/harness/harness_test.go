package harness

import (
	"strings"
	"testing"
	"time"

	"specqp/internal/exec"
)

// fakeOutcomes builds a deterministic outcome set for aggregation tests.
func fakeOutcomes() []Outcome {
	mk := func(k, tp int, prec, errMean float64, reqBits, predBits uint32, tTime, sTime time.Duration, tMem, sMem int64) Outcome {
		return Outcome{
			K:             k,
			NumTP:         tp,
			Precision:     prec,
			ScoreErrMean:  errMean,
			RequiredMask:  reqBits,
			PredictedMask: predBits,
			ExactMatch:    reqBits == predBits,
			TriniT:        exec.Result{MemoryObjects: tMem, ExecTime: tTime},
			SpecQP:        exec.Result{MemoryObjects: sMem, ExecTime: sTime},
		}
	}
	return []Outcome{
		mk(10, 2, 1.0, 0.0, 0b01, 0b01, 10*time.Millisecond, 5*time.Millisecond, 1000, 400),
		mk(10, 2, 0.5, 0.2, 0b11, 0b01, 20*time.Millisecond, 10*time.Millisecond, 2000, 800),
		mk(10, 3, 0.8, 0.1, 0b111, 0b111, 30*time.Millisecond, 30*time.Millisecond, 3000, 3000),
		mk(20, 2, 0.9, 0.05, 0b01, 0b01, 12*time.Millisecond, 6*time.Millisecond, 1200, 500),
	}
}

func TestTable2Aggregation(t *testing.T) {
	rows := Table2(fakeOutcomes())
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].K != 10 || rows[1].K != 20 {
		t.Fatalf("k order: %v", rows)
	}
	// k=10 precision = (1.0+0.5+0.8)/3.
	want := (1.0 + 0.5 + 0.8) / 3
	if diff := rows[0].Precision - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("k=10 precision: got %v want %v", rows[0].Precision, want)
	}
}

func TestTable3Aggregation(t *testing.T) {
	rows := Table3(fakeOutcomes())
	// Groups: (k=10, req=1): 1 exact of 1; (k=10, req=2): 0 of 1;
	// (k=10, req=3): 1 of 1; (k=20, req=1): 1 of 1.
	byKey := map[[2]int]Table3Cell{}
	for _, r := range rows {
		byKey[[2]int{r.K, r.Required}] = r
	}
	if c := byKey[[2]int{10, 2}]; c.Exact != 0 || c.Total != 1 {
		t.Fatalf("k=10 req=2: %+v", c)
	}
	if c := byKey[[2]int{10, 3}]; c.Exact != 1 || c.Total != 1 {
		t.Fatalf("k=10 req=3: %+v", c)
	}
}

func TestTable4Aggregation(t *testing.T) {
	rows := Table4(fakeOutcomes())
	byKey := map[[2]int]Table4Cell{}
	for _, r := range rows {
		byKey[[2]int{r.K, r.NumTP}] = r
	}
	c := byKey[[2]int{10, 2}]
	if c.Total != 2 {
		t.Fatalf("k=10 tp=2 total: %d", c.Total)
	}
	want := (0.0 + 0.2) / 2
	if d := c.Mean - want; d > 1e-12 || d < -1e-12 {
		t.Fatalf("k=10 tp=2 mean: got %v want %v", c.Mean, want)
	}
	// PctOfMax = 100·mean/#TP = 100·0.1/2 = 5.
	if d := c.PctOfMax - 5; d > 1e-9 || d < -1e-9 {
		t.Fatalf("pct: got %v want 5", c.PctOfMax)
	}
}

func TestFigureAggregations(t *testing.T) {
	bars := FigureByTP(fakeOutcomes())
	byKey := map[[2]int]FigureBar{}
	for _, b := range bars {
		byKey[[2]int{b.K, b.Group}] = b
	}
	b1 := byKey[[2]int{10, 2}]
	if b1.Queries != 2 {
		t.Fatalf("k=10 tp=2 queries: %d", b1.Queries)
	}
	if b1.TriniTTime != 15*time.Millisecond {
		t.Fatalf("avg T time: %v", b1.TriniTTime)
	}
	if b1.SpecQPTime != 7500*time.Microsecond {
		t.Fatalf("avg S time: %v", b1.SpecQPTime)
	}
	if sp := b1.Speedup(); sp < 1.99 || sp > 2.01 {
		t.Fatalf("speedup: %v", sp)
	}
	if mr := b1.MemRatio(); mr < 2.49 || mr > 2.51 {
		t.Fatalf("mem ratio: %v", mr)
	}

	relaxed := FigureByRelaxed(fakeOutcomes())
	byG := map[[2]int]FigureBar{}
	for _, b := range relaxed {
		byG[[2]int{b.K, b.Group}] = b
	}
	// Predicted masks: 0b01 (1 bit) ×2 at k=10, 0b111 (3 bits) ×1.
	if b := byG[[2]int{10, 1}]; b.Queries != 2 {
		t.Fatalf("k=10 relaxed=1 queries: %d", b.Queries)
	}
	if b := byG[[2]int{10, 3}]; b.Queries != 1 {
		t.Fatalf("k=10 relaxed=3 queries: %d", b.Queries)
	}
}

func TestPrintersProduceStableLayout(t *testing.T) {
	outs := fakeOutcomes()
	var sb strings.Builder
	PrintTable2(&sb, "test", Table2(outs))
	PrintTable3(&sb, "test", Table3(outs))
	PrintTable4(&sb, "test", Table4(outs))
	PrintFigure(&sb, "Figure X", "#TP", FigureByTP(outs))
	out := sb.String()
	for _, want := range []string{
		"Table 2", "Table 3", "Table 4", "Figure X",
		"precision", "relaxation", "mean", "spdup",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output missing %q:\n%s", want, out)
		}
	}
}

func TestSpeedupZeroGuards(t *testing.T) {
	var b FigureBar
	if b.Speedup() != 0 || b.MemRatio() != 0 {
		t.Fatal("zero bars must not divide by zero")
	}
}

func TestAvgTail(t *testing.T) {
	times := []time.Duration{10, 20, 30, 40, 50}
	if got := avgTail(times, 3); got != 40 {
		t.Fatalf("avgTail(..,3): got %v want 40", got)
	}
	if got := avgTail(times, 0); got != 30 {
		t.Fatalf("avgTail(..,0) should average all: got %v", got)
	}
	if got := avgTail(times, 99); got != 30 {
		t.Fatalf("avgTail(..,99) should clamp: got %v", got)
	}
}
