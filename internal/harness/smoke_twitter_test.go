package harness

import (
	"fmt"
	"os"
	"testing"
	"time"

	"specqp/internal/datagen"
)

func TestSmokeTwitter(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t0 := time.Now()
	ds, err := datagen.Twitter(datagen.TwitterConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("twitter gen: %v, triples=%d queries=%d rules=%d maxFanout=%d\n",
		time.Since(t0), ds.Store.Len(), len(ds.Queries), ds.Rules.Len(), ds.Rules.MaxFanout())
	r := NewRunner(ds)
	t2 := time.Now()
	outs := r.RunAll()
	fmt.Printf("runall: %v (%d outcomes)\n", time.Since(t2), len(outs))
	PrintTable2(os.Stdout, "twitter", Table2(outs))
	PrintTable3(os.Stdout, "twitter", Table3(outs))
	PrintTable4(os.Stdout, "twitter", Table4(outs))
	PrintFigure(os.Stdout, "Fig8", "#TP", FigureByTP(outs))
	PrintFigure(os.Stdout, "Fig9", "#TPrelaxed", FigureByRelaxed(outs))
}
