package operators

// Prefetch pulls entries from an inner stream on a background goroutine into
// a bounded buffer, so independent join legs produce entries concurrently
// while the rank join consumes them. It is *observationally identical* to
// the inner stream: TopScore is captured at construction, and each buffered
// entry carries the inner stream's Bound as recorded immediately after that
// entry was pulled — exactly the value a sequential consumer would have seen
// at that point. The rank join's corner-bound arithmetic, pull balancing and
// termination therefore behave bit-for-bit as in sequential execution; only
// the wall-clock overlap changes.
//
// The inner stream must be self-contained after construction (all leg
// streams — scans, merges, answer scans — are): it is consumed exclusively
// by the background goroutine. Entries stay valid because leg streams only
// recycle bindings on Reset, which the prefetched pipeline never calls.
// Prefetch is deliberately not Resettable.
type Prefetch struct {
	ch    chan prefetched
	top   float64
	bound float64
	done  bool
	// inner is retained only so TraceTree can walk through the prefetch to
	// the wrapped operator's stats; Next never touches it (the background
	// goroutine owns consumption).
	inner Stream
}

type prefetched struct {
	e     Entry
	bound float64
	ok    bool
}

// DefaultPrefetchDepth is the per-leg buffer used by the executor: deep
// enough to decouple producer bursts from the join's alternating pulls,
// small enough that an early top-k cutoff wastes little work.
const DefaultPrefetchDepth = 64

// NewPrefetch starts prefetching s. Closing stop terminates the background
// goroutine (used by the executor when the top-k is reached before the legs
// are exhausted); consumers must not call Next afterwards.
func NewPrefetch(s Stream, depth int, stop <-chan struct{}) *Prefetch {
	if depth < 1 {
		depth = 1
	}
	p := &Prefetch{
		ch:    make(chan prefetched, depth),
		top:   s.TopScore(),
		inner: s,
	}
	p.bound = s.Bound()
	go func() {
		defer close(p.ch)
		for {
			e, ok := s.Next()
			item := prefetched{e: e, bound: s.Bound(), ok: ok}
			select {
			case p.ch <- item:
			case <-stop:
				return
			}
			if !ok {
				return
			}
		}
	}()
	return p
}

// TopScore implements Stream.
func (p *Prefetch) TopScore() float64 { return p.top }

// Bound implements Stream.
func (p *Prefetch) Bound() float64 { return p.bound }

// Next implements Stream.
func (p *Prefetch) Next() (Entry, bool) {
	if p.done {
		return Entry{}, false
	}
	item, ok := <-p.ch
	if !ok {
		// Channel closed by stop: treat as exhausted without touching the
		// bound (nothing observes it after a cancelled run).
		p.done = true
		return Entry{}, false
	}
	p.bound = item.bound
	if !item.ok {
		p.done = true
		return Entry{}, false
	}
	return item.e, true
}
