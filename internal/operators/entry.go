// Package operators implements the physical top-k operators of TriniT and
// Spec-QP: score-sorted scans over a pattern's match list, the Incremental
// Merge operator (Theobald et al., SIGIR 2005) that folds a triple pattern
// and all of its weighted relaxations into one sorted stream, and the
// HRJN-style Rank Join (Ilyas et al., VLDB 2003/04) with corner-bound early
// termination. All operators report the number of answer objects they create
// to a shared Counter — the paper's memory metric ("the total no. of answer
// objects created directly corresponds to the amount of search space
// traversed").
package operators

import (
	"fmt"
	"sync/atomic"

	"specqp/internal/kg"
)

// Entry is one (partial) answer flowing between operators: a binding over
// the query's variable set, its accumulated score, and a bitmask of pattern
// indexes that were satisfied through a relaxation (provenance for the
// prediction-accuracy analysis).
type Entry struct {
	Binding kg.Binding
	Score   float64
	Relaxed uint32
}

// String renders the entry compactly for debugging.
func (e Entry) String() string {
	return fmt.Sprintf("entry{%v %.4f %b}", []kg.ID(e.Binding), e.Score, e.Relaxed)
}

// Counter tallies answer objects created by the operators. A nil *Counter is
// legal and counts nothing, so operators can be used without instrumentation.
//
// A Counter also carries the execution's abort hook (SetAbort): the shared
// per-execution object every operator already receives is the natural channel
// for cancellation, and operators with unbounded internal pull loops — the
// rank joins and the Incremental Merge — poll it at a bounded stride so a
// cancelled query stops mid-join instead of running one full Next() chain to
// completion.
type Counter struct {
	n atomic.Int64
	// abort reports whether the execution should stop early. It is set once,
	// before any operator goroutine starts (RunContext does this ahead of
	// stream construction), and only read afterwards — the goroutine-creation
	// happens-before edge makes the plain field safe under the prefetchers'
	// concurrent reads.
	abort func() bool
	// tracing marks the execution as traced: operators built against this
	// counter allocate a per-instance trace.Node and record pulls, emissions,
	// dedup suppressions and bound samples into it. Set once before stream
	// construction (same happens-before discipline as abort); when false —
	// the default — operators carry a nil node and every recording call is a
	// single nil check, keeping the hot path at 0 allocs/op and bit-identical.
	tracing bool
}

// AbortStride is the pull-loop polling interval for the abort hook: operators
// with unbounded internal iteration check Aborted every AbortStride input
// pulls, bounding a cancelled query's overshoot to a few hundred probes per
// operator instead of a full input drain.
const AbortStride = 64

// SetAbort installs the abort hook. Call it before the operator tree is built
// (and before any prefetch goroutine starts); f must be safe for concurrent
// use, like ctx.Err.
func (c *Counter) SetAbort(f func() bool) {
	if c != nil {
		c.abort = f
	}
}

// Aborted reports whether the abort hook fired. Nil counters and counters
// without a hook never abort.
func (c *Counter) Aborted() bool {
	return c != nil && c.abort != nil && c.abort()
}

// EnableTracing marks the execution as traced. Call it before the operator
// tree is built; operators constructed afterwards allocate trace nodes.
func (c *Counter) EnableTracing() {
	if c != nil {
		c.tracing = true
	}
}

// Tracing reports whether operators built against this counter should record
// execution statistics. Nil counters never trace.
func (c *Counter) Tracing() bool {
	return c != nil && c.tracing
}

// Inc records the creation of one answer object.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add records the creation of k answer objects.
func (c *Counter) Add(k int64) {
	if c != nil {
		c.n.Add(k)
	}
}

// Value returns the number of objects recorded so far.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c != nil {
		c.n.Store(0)
	}
}

// Stream is a pull-based iterator over entries sorted by score descending.
// TopScore is an upper bound on the score of any entry the stream can ever
// produce; Bound is an upper bound on the score of any entry *not yet*
// produced (it starts at TopScore and decreases monotonically as entries are
// consumed). Both are required by the rank join's corner-bound threshold.
type Stream interface {
	// Next returns the next entry in descending score order. ok is false
	// when the stream is exhausted.
	Next() (e Entry, ok bool)
	// TopScore returns the score of the stream's first entry (0 if empty).
	TopScore() float64
	// Bound returns an upper bound on all future entries' scores.
	Bound() float64
}

// Resettable is implemented by streams that can restart from the beginning,
// enabling the nested-loops rank join variant. Reset may invalidate entries
// previously returned by Next: stream bindings are slab-arena-backed and the
// next pass reuses the slabs, so callers must copy (e.g. via Binding.Merge)
// anything they keep across a Reset.
type Resettable interface {
	Stream
	Reset()
}

// Drain exhausts a stream and returns all entries (testing helper and naive
// execution path).
func Drain(s Stream) []Entry {
	var out []Entry
	for {
		e, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// Certified is implemented by streams that can certify their emissions: after
// a successful Next, Certificate returns the corner-bound threshold that held
// at the instant the entry was released — an upper bound on the score of any
// entry the stream had not yet surfaced at that moment. The streaming contract
// is exactly `entry.Score >= Certificate() - eps`: no future entry can outrank
// an emitted one, which is what lets a caller forward answers to a client
// before the top-k fills. RankJoin implements it; the streaming oracle asserts
// it at every emission.
type Certified interface {
	Stream
	Certificate() float64
}

// EmitFunc receives entries the moment the producing stream proves them final.
// Returning false stops the drain early (a disconnected client, a satisfied
// prefix); the producer makes no further pulls after a false return.
type EmitFunc func(Entry) bool

// EmitK pulls at most k entries from the stream, handing each to emit as soon
// as Next proves it final — for the rank joins that is the instant the corner
// bound drops to the entry's score, long before the remaining k-1 are known.
// It returns the number of entries emitted. EmitK is the streaming primitive
// DrainK is expressed on, so batch and streaming consumers observe the same
// entry sequence by construction.
func EmitK(s Stream, k int, emit EmitFunc) int {
	n := 0
	for n < k {
		e, ok := s.Next()
		if !ok {
			break
		}
		n++
		if !emit(e) {
			break
		}
	}
	return n
}

// DrainK pulls at most k entries from the stream.
func DrainK(s Stream, k int) []Entry {
	out := make([]Entry, 0, k)
	EmitK(s, k, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// IsSortedDesc reports whether entries are in descending score order
// (invariant checked by tests on every operator output).
func IsSortedDesc(es []Entry) bool {
	for i := 1; i < len(es); i++ {
		if es[i].Score > es[i-1].Score+1e-9 {
			return false
		}
	}
	return true
}
