package operators

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"specqp/internal/kg"
)

// sliceStream adapts a fixed entry slice (sorted desc) to Stream, for
// operator tests that need precise control over inputs.
type sliceStream struct {
	entries []Entry
	pos     int
}

func newSliceStream(scores []float64, firstID kg.ID, mask uint32, nvars int) *sliceStream {
	es := make([]Entry, len(scores))
	for i, s := range scores {
		b := kg.NewBinding(nvars)
		b[0] = firstID + kg.ID(i)
		es[i] = Entry{Binding: b, Score: s, Relaxed: mask}
	}
	return &sliceStream{entries: es}
}

func (s *sliceStream) Next() (Entry, bool) {
	if s.pos >= len(s.entries) {
		return Entry{}, false
	}
	e := s.entries[s.pos]
	s.pos++
	return e, true
}

func (s *sliceStream) TopScore() float64 {
	if len(s.entries) == 0 {
		return 0
	}
	return s.entries[0].Score
}

func (s *sliceStream) Bound() float64 {
	if s.pos == 0 {
		return s.TopScore()
	}
	if s.pos >= len(s.entries) {
		return 0
	}
	return s.entries[s.pos-1].Score
}

func (s *sliceStream) Reset() { s.pos = 0 }

func TestIncrementalMergeGlobalOrder(t *testing.T) {
	a := newSliceStream([]float64{1.0, 0.5, 0.1}, 0, 0, 1)
	b := newSliceStream([]float64{0.9, 0.6, 0.2}, 100, 1, 1)
	c := &Counter{}
	m := NewIncrementalMerge([]Stream{a, b}, c)
	es := Drain(m)
	if len(es) != 6 {
		t.Fatalf("got %d entries want 6", len(es))
	}
	want := []float64{1.0, 0.9, 0.6, 0.5, 0.2, 0.1}
	for i, e := range es {
		if math.Abs(e.Score-want[i]) > 1e-12 {
			t.Fatalf("position %d: got %v want %v", i, e.Score, want[i])
		}
	}
	if c.Value() != 6 {
		t.Fatalf("counter: got %d want 6", c.Value())
	}
}

func TestIncrementalMergeDedupKeepsMax(t *testing.T) {
	// Same binding (ID 5) appears in both streams with different scores;
	// the merged stream must emit it once with the higher score.
	mk := func(score float64, mask uint32) Entry {
		b := kg.NewBinding(1)
		b[0] = 5
		return Entry{Binding: b, Score: score, Relaxed: mask}
	}
	a := &sliceStream{entries: []Entry{mk(0.9, 0)}}
	b := &sliceStream{entries: []Entry{mk(0.7, 1)}}
	m := NewIncrementalMerge([]Stream{a, b}, nil)
	es := Drain(m)
	if len(es) != 1 {
		t.Fatalf("dedup: got %d entries want 1", len(es))
	}
	if es[0].Score != 0.9 || es[0].Relaxed != 0 {
		t.Fatalf("kept entry: got score=%v mask=%b want 0.9/0", es[0].Score, es[0].Relaxed)
	}
}

func TestIncrementalMergeBounds(t *testing.T) {
	a := newSliceStream([]float64{1.0, 0.5}, 0, 0, 1)
	b := newSliceStream([]float64{0.8}, 100, 0, 1)
	m := NewIncrementalMerge([]Stream{a, b}, nil)
	if m.TopScore() != 1.0 {
		t.Fatalf("top: got %v", m.TopScore())
	}
	m.Next() // 1.0
	m.Next() // 0.8
	if got := m.Bound(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("bound: got %v want 0.8", got)
	}
	Drain(m)
	if m.Bound() != 0 {
		t.Fatalf("exhausted bound: got %v", m.Bound())
	}
}

func TestIncrementalMergeEmptyInputs(t *testing.T) {
	m := NewIncrementalMerge([]Stream{
		&sliceStream{}, &sliceStream{},
	}, nil)
	if m.TopScore() != 0 {
		t.Fatal("empty merge top score must be 0")
	}
	if _, ok := m.Next(); ok {
		t.Fatal("empty merge produced an entry")
	}
}

func TestIncrementalMergeSingleInput(t *testing.T) {
	a := newSliceStream([]float64{0.7, 0.3}, 0, 0, 1)
	m := NewIncrementalMerge([]Stream{a}, nil)
	es := Drain(m)
	if len(es) != 2 || es[0].Score != 0.7 {
		t.Fatalf("single input merge: %v", es)
	}
}

func TestIncrementalMergeLazyConsumption(t *testing.T) {
	// A low-weight input must not be read past its head while the strong
	// input still dominates — the core efficiency property of the operator.
	strong := newSliceStream([]float64{1.0, 0.9, 0.8, 0.7}, 0, 0, 1)
	weak := newSliceStream([]float64{0.2, 0.1}, 100, 0, 1)
	m := NewIncrementalMerge([]Stream{strong, weak}, nil)
	for i := 0; i < 4; i++ {
		m.Next()
	}
	// After 4 pulls all strong entries are emitted; the weak stream should
	// have been advanced at most once past its primed head.
	if weak.pos > 1 {
		t.Fatalf("weak stream over-consumed: pos=%d", weak.pos)
	}
}

func TestIncrementalMergeReset(t *testing.T) {
	a := newSliceStream([]float64{1.0, 0.5}, 0, 0, 1)
	b := newSliceStream([]float64{0.8}, 100, 0, 1)
	m := NewIncrementalMerge([]Stream{a, b}, nil)
	first := Drain(m)
	m.Reset()
	second := Drain(m)
	if len(first) != len(second) {
		t.Fatalf("reset: %d vs %d entries", len(first), len(second))
	}
	for i := range first {
		if first[i].Score != second[i].Score {
			t.Fatal("reset changed order")
		}
	}
}

// nonResettableStream is a Stream that deliberately lacks Reset.
type nonResettableStream struct{ inner *sliceStream }

func (s *nonResettableStream) Next() (Entry, bool) { return s.inner.Next() }
func (s *nonResettableStream) TopScore() float64   { return s.inner.TopScore() }
func (s *nonResettableStream) Bound() float64      { return s.inner.Bound() }

// TestIncrementalMergeResetInvariant pins the constructor-established Reset
// contract: CanReset reflects whether every input is Resettable, and Reset
// on a merge with a non-resettable input fails with a diagnostic that names
// the offending input instead of an opaque interface-conversion panic.
func TestIncrementalMergeResetInvariant(t *testing.T) {
	ok := NewIncrementalMerge([]Stream{
		newSliceStream([]float64{1.0}, 0, 0, 1),
		newSliceStream([]float64{0.5}, 10, 0, 1),
	}, nil)
	if !ok.CanReset() {
		t.Fatal("all-resettable merge must report CanReset")
	}
	ok.Reset() // must not panic

	bad := NewIncrementalMerge([]Stream{
		newSliceStream([]float64{1.0}, 0, 0, 1),
		&nonResettableStream{inner: newSliceStream([]float64{0.5}, 10, 0, 1)},
	}, nil)
	if bad.CanReset() {
		t.Fatal("merge with non-resettable input must not report CanReset")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Reset on non-resettable merge must panic")
		}
		msg, isString := r.(string)
		if !isString || !strings.Contains(msg, "input 1") || !strings.Contains(msg, "Resettable") {
			t.Fatalf("panic message not diagnostic: %v", r)
		}
	}()
	bad.Reset()
}

func TestIncrementalMergeRandomisedOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var inputs []Stream
		id := kg.ID(0)
		total := 0
		for s := 0; s < 1+rng.Intn(5); s++ {
			n := rng.Intn(20)
			scores := make([]float64, n)
			v := 1.0
			for i := range scores {
				v *= 0.5 + rng.Float64()/2
				scores[i] = v
			}
			inputs = append(inputs, newSliceStream(scores, id, 0, 1))
			id += kg.ID(n)
			total += n
		}
		m := NewIncrementalMerge(inputs, nil)
		es := Drain(m)
		if len(es) != total {
			t.Fatalf("trial %d: got %d entries want %d", trial, len(es), total)
		}
		if !IsSortedDesc(es) {
			t.Fatalf("trial %d: merge output not sorted", trial)
		}
	}
}
