package operators

import (
	"specqp/internal/kg"
	"specqp/internal/trace"
)

// ShardedListScan streams the matches of one triple pattern over a
// kg.ShardedStore: one ListScan per non-empty shard — each a zero-alloc view
// of that shard's Freeze-sorted posting, normalised by the *global* maximum
// score — interleaved by a k-way heap on (raw score descending, global triple
// index ascending). Because a shard's local order is the global insertion
// order restricted to that shard, the merged sequence is exactly the
// unsharded ListScan's emission sequence: same entries, same order, same
// scores, same TopScore/Bound trajectory. Downstream operators therefore
// behave bit-identically whether a query runs over one segment or many.
//
// Deduplication stays where the partitioning puts it: per-shard sub-scans
// dedup within their shard (duplicates of one (s,p,o) key share a subject and
// hence a shard), and a merge-level map is added only for the single shape
// where two shards can emit the same binding — a pattern whose subject is a
// variable outside the query's variable set, which the binding does not
// capture.
type ShardedListScan struct {
	subs    []*ListScan
	glob    [][]int32   // per sub: shard-local index → global index
	heads   []shardHead // k-way merge heap (package-generic heap helpers)
	counter *Counter

	// seen dedups across shards; nil unless the pattern's subject is an
	// out-of-varset variable (see type comment).
	seen  map[kg.BindingKey]bool
	keyer *kg.Keyer

	top    float64
	last   float64
	primed bool

	// stats is the merged scan's trace node; the per-shard sub-scans carry
	// nil counters and stay untraced individually — the merge records the
	// post-dedup view, exactly like the unsharded scan, with Shards recording
	// the fan-in.
	stats *trace.Node
}

// shardHead is one sub-scan's current head in the merge heap.
type shardHead struct {
	entry Entry
	raw   float64 // raw (unnormalised) triple score behind the entry
	g     int32   // global triple index behind the entry
	sub   int32   // index into subs/glob
}

// heapLess orders heads by raw triple score descending, global triple index
// ascending on ties — exactly the flat match-list order, which is defined on
// raw scores. Comparing the normalised entry scores instead would be wrong:
// float64 division can collapse two distinct raw scores onto one normalised
// value, and the flat scan still emits the higher-raw triple first.
// Normalisation is a monotone map (a non-negative constant factor per scan),
// so raw order also keeps the emitted normalised sequence descending.
func (h shardHead) heapLess(o shardHead) bool {
	if h.raw != o.raw {
		return h.raw > o.raw
	}
	return h.g < o.g
}

// NewShardedListScan builds the merged scan. Parameters mirror NewListScan.
// The store may be a live *kg.ShardedStore or a pinned view of one; pinned
// shard views serve pre-clamped lists, so the out-of-bounds trim below never
// fires for them.
func NewShardedListScan(ss kg.ShardedGraph, vs *kg.VarSet, p kg.Pattern, weight float64, mask uint32, c *Counter) *ShardedListScan {
	s := &ShardedListScan{counter: c}
	type shardList struct {
		sh   kg.Graph
		glob []int32
		list []int32
	}
	lists := make([]shardList, 0, ss.NumShards())
	for si := 0; si < ss.NumShards(); si++ {
		sh := ss.ShardView(si)
		glob := ss.GlobalIndexes(si)
		list := sh.MatchList(p)
		// A live insert between the two loads above can leave the shard
		// momentarily ahead of the directory snapshot; local indexes without
		// a global mapping yet are treated as not-yet-inserted. Quiescent
		// stores never take the copy, keeping the frozen path zero-alloc.
		oob := false
		for _, li := range list {
			if int(li) >= len(glob) {
				oob = true
				break
			}
		}
		if oob {
			trimmed := make([]int32, 0, len(list))
			for _, li := range list {
				if int(li) < len(glob) {
					trimmed = append(trimmed, li)
				}
			}
			list = trimmed
		}
		if len(list) == 0 {
			continue
		}
		lists = append(lists, shardList{sh: sh, glob: glob, list: list})
	}
	// The normalisation constant is loaded AFTER the lists: triples are only
	// ever appended, so each shard's current maximum covers every raw score
	// in its (possibly older) captured list — emitted normalised scores can
	// never exceed the weight even when an insert races the construction.
	// At quiescence this is exactly the flat scan's global maximum.
	max := ss.MaxScore(p)
	for _, sl := range lists {
		// Sub-scans carry a nil counter: the merge counts post-dedup
		// emissions, exactly like the unsharded scan.
		sub := newListScanOver(sl.sh, vs, p, weight, mask, nil, sl.list, max)
		s.subs = append(s.subs, sub)
		s.glob = append(s.glob, sl.glob)
		if sub.top > s.top {
			s.top = sub.top
		}
	}
	if p.S.IsVar && vs.Index(p.S.Name) < 0 && len(s.subs) > 1 {
		// Bindings do not capture the subject, so the same binding can arise
		// in several shards; keep the globally-first occurrence, as the
		// unsharded scan does. Every sub-scan compiled the same pattern, so
		// its touched set is exactly the projection the merge must key.
		s.seen = make(map[kg.BindingKey]bool)
		s.keyer = kg.NewProjKeyer(s.subs[0].touched)
	}
	s.heads = make([]shardHead, 0, len(s.subs))
	s.last = s.top
	if c.Tracing() {
		s.stats = trace.NewNode("ShardedListScan")
		s.stats.Detail = ss.PatternString(p)
		s.stats.Shards = len(s.subs)
		s.stats.SetTop(s.top)
	}
	return s
}

// pull advances sub i and pushes (or refreshes) its head; ok reports whether
// the sub produced one.
func (s *ShardedListScan) pull(i int32) (shardHead, bool) {
	sub := s.subs[i]
	e, ok := sub.Next()
	if !ok {
		return shardHead{}, false
	}
	return shardHead{
		entry: e,
		raw:   sub.store.Triple(sub.lastIdx).Score,
		g:     s.glob[i][sub.lastIdx],
		sub:   i,
	}, true
}

func (s *ShardedListScan) prime() {
	if s.primed {
		return
	}
	s.primed = true
	for i := range s.subs {
		if h, ok := s.pull(int32(i)); ok {
			heapPush(&s.heads, h)
		}
	}
}

// TopScore implements Stream.
func (s *ShardedListScan) TopScore() float64 { return s.top }

// Bound implements Stream.
func (s *ShardedListScan) Bound() float64 { return s.last }

// Next implements Stream.
func (s *ShardedListScan) Next() (Entry, bool) {
	s.prime()
	for len(s.heads) > 0 {
		h := s.heads[0]
		s.stats.Pull()
		if nh, ok := s.pull(h.sub); ok {
			s.heads[0] = nh
			heapFixRoot(s.heads)
		} else {
			heapPop(&s.heads)
		}
		if s.seen != nil {
			key := s.keyer.Key(h.entry.Binding)
			if s.seen[key] {
				s.stats.DedupDrop()
				continue
			}
			s.seen[key] = true
		}
		s.last = h.entry.Score
		s.counter.Inc()
		if s.stats != nil {
			s.stats.Emit()
			s.stats.SampleBound(h.entry.Score)
		}
		return h.entry, true
	}
	s.last = 0
	return Entry{}, false
}

// Reset implements Resettable. Like ListScan.Reset it invalidates previously
// returned entries: the sub-scans' arenas are reused by the next pass.
func (s *ShardedListScan) Reset() {
	for _, sub := range s.subs {
		sub.Reset()
	}
	s.heads = s.heads[:0]
	s.primed = false
	s.last = s.top
	if s.seen != nil {
		clear(s.seen)
		s.keyer.Reset()
	}
}

// NewPatternScan builds the appropriate scan for the store layout: a merged
// per-shard scan over a multi-segment ShardedStore, a plain ListScan
// otherwise. Both stream the same entries in the same order; the sharded
// variant just never materialises a merged list.
func NewPatternScan(g kg.Graph, vs *kg.VarSet, p kg.Pattern, weight float64, mask uint32, c *Counter) Stream {
	if ss, ok := g.(kg.ShardedGraph); ok && ss.NumShards() > 1 {
		return NewShardedListScan(ss, vs, p, weight, mask, c)
	}
	return NewListScan(g, vs, p, weight, mask, c)
}
