package operators

import (
	"specqp/internal/kg"
)

// ListScan streams the matches of a single triple pattern in descending
// normalised-score order, optionally weighted by a relaxation rule's weight
// and tagged with the relaxed-pattern bit. It deduplicates bindings (two
// identical triples with different raw scores keep the higher, which comes
// first in the sorted list).
type ListScan struct {
	store   *kg.Store
	vs      *kg.VarSet
	pattern kg.Pattern
	weight  float64
	mask    uint32
	counter *Counter

	list   []int32
	max    float64
	pos    int
	seen   map[string]bool
	last   float64
	primed bool
	top    float64
}

// NewListScan builds a scan over pattern p. weight scales normalised scores
// (use 1 for the original pattern, the rule weight for a relaxation). mask is
// OR-ed into every entry's Relaxed field (0 for originals, 1<<patternIdx for
// relaxations). vs must be the variable set of the enclosing query.
func NewListScan(store *kg.Store, vs *kg.VarSet, p kg.Pattern, weight float64, mask uint32, c *Counter) *ListScan {
	s := &ListScan{
		store:   store,
		vs:      vs,
		pattern: p,
		weight:  weight,
		mask:    mask,
		counter: c,
		list:    store.MatchList(p),
		max:     store.MaxScore(p),
		seen:    make(map[string]bool),
	}
	if len(s.list) > 0 && s.max > 0 {
		s.top = weight * store.Triple(s.list[0]).Score / s.max
	}
	s.last = s.top
	return s
}

// TopScore implements Stream.
func (s *ListScan) TopScore() float64 { return s.top }

// Bound implements Stream.
func (s *ListScan) Bound() float64 { return s.last }

// Next implements Stream.
func (s *ListScan) Next() (Entry, bool) {
	for s.pos < len(s.list) {
		t := s.store.Triple(s.list[s.pos])
		s.pos++
		b := kg.NewBinding(s.vs.Len())
		nb, ok := bindTriple(s.vs, s.pattern, t, b)
		if !ok {
			continue
		}
		key := nb.Key()
		if s.seen[key] {
			continue
		}
		s.seen[key] = true
		score := 0.0
		if s.max > 0 {
			score = s.weight * t.Score / s.max
		}
		s.last = score
		s.counter.Inc()
		return Entry{Binding: nb, Score: score, Relaxed: s.mask}, true
	}
	s.last = 0
	return Entry{}, false
}

// Reset implements Resettable.
func (s *ListScan) Reset() {
	s.pos = 0
	s.seen = make(map[string]bool)
	s.last = s.top
}

// bindTriple extends binding b with the variable assignments implied by
// matching t against p. It returns false when a constant mismatches or a
// repeated variable binds inconsistently.
func bindTriple(vs *kg.VarSet, p kg.Pattern, t kg.Triple, b kg.Binding) (kg.Binding, bool) {
	nb := b.Clone()
	set := func(term kg.Term, v kg.ID) bool {
		if !term.IsVar {
			return term.ID == v
		}
		i := vs.Index(term.Name)
		if i < 0 {
			// Variable not part of the query's variable set (e.g. a
			// relaxation introduced a fresh variable name): ignore it, the
			// binding carries only query variables.
			return true
		}
		if nb[i] != kg.NoID {
			return nb[i] == v
		}
		nb[i] = v
		return true
	}
	if set(p.S, t.S) && set(p.P, t.P) && set(p.O, t.O) {
		return nb, true
	}
	return nil, false
}
