package operators

import (
	"fmt"

	"specqp/internal/kg"
	"specqp/internal/trace"
)

// ListScan streams the matches of a single triple pattern in descending
// normalised-score order, optionally weighted by a relaxation rule's weight
// and tagged with the relaxed-pattern bit. It deduplicates bindings when —
// and only when — duplicates are possible (two identical triples with
// different raw scores keep the higher, which comes first in the sorted
// list); patterns that provably cannot repeat a binding skip the dedup map
// entirely.
//
// The scan binds each candidate triple into a reusable scratch binding and
// clones — from a slab arena — only on emit, so non-matching candidates and
// dedup-suppressed repeats cost zero allocations, and emits amortise to one
// allocation per arenaChunkEntries entries.
type ListScan struct {
	store   kg.Graph
	weight  float64
	mask    uint32
	counter *Counter

	list []int32
	max  float64
	pos  int
	// lastIdx is the store-local index of the triple behind the most recent
	// emission — the tiebreak ShardedListScan needs to interleave per-shard
	// sub-scans in exact global order.
	lastIdx int32

	// Compiled binder: one slot per pattern position, resolved against the
	// variable set once at construction so Next never does a map lookup.
	slots   [3]bindSlot
	touched []int      // distinct variable indexes this pattern binds
	scratch kg.Binding // reused across candidates; cloned only on emit
	arena   bindingArena

	// seen is nil when the pattern provably cannot produce duplicate
	// bindings: the store holds no duplicate (s,p,o) triples and every
	// position is a constant or a variable of the query's variable set (so
	// any two distinct triples differ in some captured position).
	seen  map[kg.BindingKey]bool
	keyer *kg.Keyer

	last float64
	top  float64

	// stats is the scan's trace node — nil unless the execution's Counter has
	// tracing enabled, in which case every candidate, suppression and emission
	// is recorded. All recording methods are nil-safe, so the untraced hot
	// path pays one nil check per event.
	stats *trace.Node
}

// bindSlot is the compiled form of one pattern position.
type bindSlot struct {
	varIdx  int   // ≥0: scratch slot to bind; slotConst / slotIgnore otherwise
	constID kg.ID // constant to match, when varIdx == slotConst
}

const (
	slotConst  = -1 // position is a constant term
	slotIgnore = -2 // variable outside the query's variable set
)

// NewListScan builds a scan over pattern p. weight scales normalised scores
// (use 1 for the original pattern, the rule weight for a relaxation). mask is
// OR-ed into every entry's Relaxed field (0 for originals, 1<<patternIdx for
// relaxations). vs must be the variable set of the enclosing query.
//
// The argument order below is load-bearing on live stores: the match list is
// loaded before the normalisation constant, and triples are only ever
// appended, so MaxScore — from the same or a newer snapshot — always covers
// every raw score in the captured list. Normalised scores therefore never
// exceed weight even when an insert races the construction.
func NewListScan(store kg.Graph, vs *kg.VarSet, p kg.Pattern, weight float64, mask uint32, c *Counter) *ListScan {
	list := store.MatchList(p)
	return newListScanOver(store, vs, p, weight, mask, c, list, store.MaxScore(p))
}

// newListScanOver builds a scan over an explicit match list and an explicit
// normalisation constant. ShardedListScan uses it to run each per-shard
// sub-scan against the shard's zero-alloc list view while normalising by the
// global maximum, so sub-scan scores equal the unsharded scan's exactly.
func newListScanOver(store kg.Graph, vs *kg.VarSet, p kg.Pattern, weight float64, mask uint32, c *Counter, list []int32, max float64) *ListScan {
	s := &ListScan{
		store:   store,
		weight:  weight,
		mask:    mask,
		counter: c,
		list:    list,
		max:     max,
		scratch: kg.NewBinding(vs.Len()),
	}
	dedup := store.HasDuplicates()
	for i, term := range [3]kg.Term{p.S, p.P, p.O} {
		switch {
		case !term.IsVar:
			s.slots[i] = bindSlot{varIdx: slotConst, constID: term.ID}
		default:
			vi := vs.Index(term.Name)
			if vi < 0 {
				// Variable not part of the query's variable set (e.g. a
				// relaxation introduced a fresh variable name): the binding
				// carries only query variables, so two triples differing
				// only here collapse to one binding — dedup is required.
				s.slots[i] = bindSlot{varIdx: slotIgnore}
				dedup = true
				continue
			}
			s.slots[i] = bindSlot{varIdx: vi}
			known := false
			for _, t := range s.touched {
				if t == vi {
					known = true
					break
				}
			}
			if !known {
				s.touched = append(s.touched, vi)
			}
		}
	}
	if dedup {
		s.seen = make(map[kg.BindingKey]bool)
		// Key only the slots this pattern binds — every other position is
		// NoID in all of the scan's bindings — so patterns of ≤2 variables
		// stay on the packed, allocation-free path.
		s.keyer = kg.NewProjKeyer(s.touched)
	}
	if len(s.list) > 0 && s.max > 0 {
		s.top = weight * store.Triple(s.list[0]).Score / s.max
	}
	s.last = s.top
	if c.Tracing() {
		s.stats = trace.NewNode("ListScan")
		s.stats.Detail = store.PatternString(p)
		if weight != 1 {
			s.stats.Detail = fmt.Sprintf("%s w=%.3f", s.stats.Detail, weight)
		}
		s.stats.SetTop(s.top)
	}
	return s
}

// TopScore implements Stream.
func (s *ListScan) TopScore() float64 { return s.top }

// Bound implements Stream.
func (s *ListScan) Bound() float64 { return s.last }

// bind matches t against the compiled pattern, writing variable values into
// the scratch binding. It returns false when a constant mismatches or a
// repeated variable binds inconsistently.
func (s *ListScan) bind(t kg.Triple) bool {
	for _, vi := range s.touched {
		s.scratch[vi] = kg.NoID
	}
	vals := [3]kg.ID{t.S, t.P, t.O}
	for i, sl := range s.slots {
		v := vals[i]
		switch sl.varIdx {
		case slotConst:
			if sl.constID != v {
				return false
			}
		case slotIgnore:
			// Fresh variable: matches anything, captured nowhere.
		default:
			if s.scratch[sl.varIdx] != kg.NoID && s.scratch[sl.varIdx] != v {
				return false
			}
			s.scratch[sl.varIdx] = v
		}
	}
	return true
}

// Next implements Stream.
func (s *ListScan) Next() (Entry, bool) {
	for s.pos < len(s.list) {
		ti := s.list[s.pos]
		t := s.store.Triple(ti)
		s.pos++
		s.stats.Pull()
		if !s.bind(t) {
			continue
		}
		if s.seen != nil {
			key := s.keyer.Key(s.scratch)
			if s.seen[key] {
				s.stats.DedupDrop()
				continue
			}
			s.seen[key] = true
		}
		score := 0.0
		if s.max > 0 {
			score = s.weight * t.Score / s.max
		}
		s.last = score
		s.lastIdx = ti
		s.counter.Inc()
		if s.stats != nil {
			s.stats.Emit()
			s.stats.SampleBound(score)
			s.stats.SetArenaBytes(s.arena.bytes())
		}
		return Entry{Binding: s.arena.clone(s.scratch), Score: score, Relaxed: s.mask}, true
	}
	s.last = 0
	return Entry{}, false
}

// Reset implements Resettable. It invalidates entries previously returned by
// Next: their bindings are reused by the next pass over the list.
func (s *ListScan) Reset() {
	s.pos = 0
	s.last = s.top
	s.arena.reset()
	if s.seen != nil {
		clear(s.seen)
		s.keyer.Reset()
	}
}
