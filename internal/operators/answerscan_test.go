package operators

import (
	"math"
	"testing"

	"specqp/internal/kg"
)

func answers(scores ...float64) []kg.Answer {
	out := make([]kg.Answer, len(scores))
	for i, s := range scores {
		b := kg.NewBinding(1)
		b[0] = kg.ID(i)
		out[i] = kg.Answer{Binding: b, Score: s}
	}
	return out
}

func TestAnswerScanBasics(t *testing.T) {
	s := NewAnswerScan(answers(1.0, 0.6, 0.2), 0.5, 0b10, nil)
	if s.TopScore() != 0.5 {
		t.Fatalf("top: %v", s.TopScore())
	}
	es := Drain(s)
	if len(es) != 3 {
		t.Fatalf("entries: %d", len(es))
	}
	want := []float64{0.5, 0.3, 0.1}
	for i, e := range es {
		if math.Abs(e.Score-want[i]) > 1e-12 {
			t.Fatalf("score %d: got %v want %v", i, e.Score, want[i])
		}
		if e.Relaxed != 0b10 {
			t.Fatalf("mask: %b", e.Relaxed)
		}
	}
	if s.Bound() != 0 {
		t.Fatalf("exhausted bound: %v", s.Bound())
	}
}

func TestAnswerScanEmpty(t *testing.T) {
	s := NewAnswerScan(nil, 1, 0, nil)
	if s.TopScore() != 0 || s.Bound() != 0 {
		t.Fatal("empty scan bounds")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("empty scan produced entry")
	}
}

func TestAnswerScanReset(t *testing.T) {
	s := NewAnswerScan(answers(0.9, 0.4), 1, 0, nil)
	first := Drain(s)
	s.Reset()
	second := Drain(s)
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("reset: %d then %d", len(first), len(second))
	}
	if s.Bound() != 0 {
		t.Fatal("bound after re-drain")
	}
}

func TestAnswerScanCounter(t *testing.T) {
	c := &Counter{}
	Drain(NewAnswerScan(answers(1, 0.5, 0.25), 1, 0, c))
	if c.Value() != 3 {
		t.Fatalf("counter: %d", c.Value())
	}
}

func TestAnswerScanPreservesProvenance(t *testing.T) {
	as := answers(0.9)
	as[0].Relaxed = 0b100
	es := Drain(NewAnswerScan(as, 1, 0b001, nil))
	if es[0].Relaxed != 0b101 {
		t.Fatalf("mask union: %b", es[0].Relaxed)
	}
}

func TestAnswerScanInRankJoin(t *testing.T) {
	// AnswerScan must interoperate with RankJoin as any other stream.
	l := NewAnswerScan(answers(1.0, 0.5), 1, 0, nil)
	r := NewAnswerScan(answers(0.8, 0.4), 1, 0, nil)
	rj := NewRankJoin(l, r, []int{0}, nil)
	es := Drain(rj)
	if len(es) != 2 {
		t.Fatalf("join results: %d", len(es))
	}
	if math.Abs(es[0].Score-1.8) > 1e-12 {
		t.Fatalf("top: %v", es[0].Score)
	}
	if !IsSortedDesc(es) {
		t.Fatal("unsorted")
	}
}
