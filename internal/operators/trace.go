package operators

import (
	"specqp/internal/trace"
)

// TraceTree compiles the operator tree rooted at s into its plan-shaped
// trace-node tree, linking each operator's stats node to its inputs'. It
// returns nil when the execution was untraced (operators carry nil nodes).
//
// Prefetch wrappers are structural: they carry no counters of their own, so
// TraceTree synthesises a node around the wrapped operator's — the tree shows
// where the concurrency seam sat without perturbing the inner stats. Call
// TraceTree once, after the drain, on the consuming goroutine; node counters
// are safe to snapshot even if a cancelled leg's prefetch goroutine is still
// winding down.
func TraceTree(s Stream) *trace.Node {
	switch v := s.(type) {
	case *ListScan:
		return v.stats
	case *ShardedListScan:
		return v.stats
	case *AnswerScan:
		return v.stats
	case *IncrementalMerge:
		n := v.stats
		if n != nil && n.Children == nil {
			for _, in := range v.inputs {
				if c := TraceTree(in); c != nil {
					n.Children = append(n.Children, c)
				}
			}
		}
		return n
	case *RankJoin:
		n := v.stats
		if n != nil && n.Children == nil {
			if c := TraceTree(v.left); c != nil {
				n.Children = append(n.Children, c)
			}
			if c := TraceTree(v.right); c != nil {
				n.Children = append(n.Children, c)
			}
		}
		return n
	case *NRJN:
		n := v.stats
		if n != nil && n.Children == nil {
			if c := TraceTree(v.outer); c != nil {
				n.Children = append(n.Children, c)
			}
			if c := TraceTree(v.inner); c != nil {
				n.Children = append(n.Children, c)
			}
		}
		return n
	case *Prefetch:
		inner := TraceTree(v.inner)
		if inner == nil {
			return nil
		}
		n := trace.NewNode("Prefetch")
		n.SetTop(v.top)
		n.Children = []*trace.Node{inner}
		return n
	}
	return nil
}

// StampBuild records a leg's construction wall time (µs) on the operator's
// own trace node — called by the executor before any Prefetch wrapping, on
// untraced executions it is a no-op.
func StampBuild(s Stream, us int64) {
	if n := nodeOf(s); n != nil {
		n.BuildUS = us
	}
}

// nodeOf returns the operator's own stats node without assembling children.
func nodeOf(s Stream) *trace.Node {
	switch v := s.(type) {
	case *ListScan:
		return v.stats
	case *ShardedListScan:
		return v.stats
	case *AnswerScan:
		return v.stats
	case *IncrementalMerge:
		return v.stats
	case *RankJoin:
		return v.stats
	case *NRJN:
		return v.stats
	}
	return nil
}
