package operators

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"specqp/internal/kg"
)

// joinStream builds a stream of entries over a 1-variable binding space
// where entry i binds the given IDs with the given scores (sorted desc).
func joinStream(ids []kg.ID, scores []float64, nvars int, varIdx int, mask uint32) *sliceStream {
	es := make([]Entry, len(ids))
	for i := range ids {
		b := kg.NewBinding(nvars)
		b[varIdx] = ids[i]
		es[i] = Entry{Binding: b, Score: scores[i], Relaxed: mask}
	}
	return &sliceStream{entries: es}
}

func TestRankJoinBasic(t *testing.T) {
	// Left: ids 1,2,3 scores 1.0,0.8,0.6. Right: ids 2,3,4 scores 0.9,0.5,0.4.
	l := joinStream([]kg.ID{1, 2, 3}, []float64{1.0, 0.8, 0.6}, 1, 0, 0)
	r := joinStream([]kg.ID{2, 3, 4}, []float64{0.9, 0.5, 0.4}, 1, 0, 1)
	c := &Counter{}
	rj := NewRankJoin(l, r, []int{0}, c)
	es := Drain(rj)
	// Joins: id2 (0.8+0.9=1.7), id3 (0.6+0.5=1.1).
	if len(es) != 2 {
		t.Fatalf("join results: got %d want 2", len(es))
	}
	if math.Abs(es[0].Score-1.7) > 1e-12 || es[0].Binding[0] != 2 {
		t.Fatalf("first result: %+v", es[0])
	}
	if math.Abs(es[1].Score-1.1) > 1e-12 || es[1].Binding[0] != 3 {
		t.Fatalf("second result: %+v", es[1])
	}
	if es[0].Relaxed != 1 {
		t.Fatalf("relaxed mask not propagated: %b", es[0].Relaxed)
	}
}

func TestRankJoinOutputSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nl, nr := 1+rng.Intn(30), 1+rng.Intn(30)
		mkSide := func(n int) ([]kg.ID, []float64) {
			ids := make([]kg.ID, n)
			scores := make([]float64, n)
			v := 1.0
			for i := range ids {
				ids[i] = kg.ID(rng.Intn(12))
				v *= 0.6 + 0.4*rng.Float64()
				scores[i] = v
			}
			return ids, scores
		}
		lids, lsc := mkSide(nl)
		rids, rsc := mkSide(nr)
		// Deduplicate bindings within each side (stream invariant).
		l := dedupStream(joinStream(lids, lsc, 1, 0, 0))
		r := dedupStream(joinStream(rids, rsc, 1, 0, 0))
		rj := NewRankJoin(&sliceStream{entries: l}, &sliceStream{entries: r}, []int{0}, nil)
		es := Drain(rj)
		if !IsSortedDesc(es) {
			t.Fatalf("trial %d: join output not sorted: %v", trial, es)
		}
		// Cross-check against brute force join.
		want := bruteJoin(l, r)
		if len(es) != len(want) {
			t.Fatalf("trial %d: got %d results want %d", trial, len(es), len(want))
		}
		for i := range es {
			if math.Abs(es[i].Score-want[i]) > 1e-9 {
				t.Fatalf("trial %d: score %d: got %v want %v", trial, i, es[i].Score, want[i])
			}
		}
	}
}

func dedupStream(s *sliceStream) []Entry {
	seen := map[string]bool{}
	var out []Entry
	for _, e := range s.entries {
		k := e.Binding.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}

func bruteJoin(l, r []Entry) []float64 {
	var out []float64
	for _, le := range l {
		for _, re := range r {
			if le.Binding[0] == re.Binding[0] {
				out = append(out, le.Score+re.Score)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

func TestRankJoinEarlyTermination(t *testing.T) {
	// Top result joins the heads of both lists; after emitting it the join
	// must not have consumed everything.
	n := 1000
	ids := make([]kg.ID, n)
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = kg.ID(i)
		scores[i] = 1 - float64(i)/float64(n)
	}
	l := joinStream(ids, scores, 1, 0, 0)
	r := joinStream(ids, scores, 1, 0, 0)
	rj := NewRankJoin(l, r, []int{0}, nil)
	e, ok := rj.Next()
	if !ok || e.Binding[0] != 0 {
		t.Fatalf("first join result: %+v ok=%v", e, ok)
	}
	if l.pos > n/2 || r.pos > n/2 {
		t.Fatalf("early termination failed: consumed %d/%d of inputs", l.pos, r.pos)
	}
}

func TestRankJoinDisjointInputs(t *testing.T) {
	l := joinStream([]kg.ID{1, 2}, []float64{1, 0.5}, 1, 0, 0)
	r := joinStream([]kg.ID{3, 4}, []float64{1, 0.5}, 1, 0, 0)
	rj := NewRankJoin(l, r, []int{0}, nil)
	if es := Drain(rj); len(es) != 0 {
		t.Fatalf("disjoint join produced %d results", len(es))
	}
}

func TestRankJoinEmptySide(t *testing.T) {
	l := joinStream([]kg.ID{1}, []float64{1}, 1, 0, 0)
	r := &sliceStream{}
	rj := NewRankJoin(l, r, []int{0}, nil)
	if es := Drain(rj); len(es) != 0 {
		t.Fatalf("join with empty side produced %d results", len(es))
	}
}

func TestRankJoinCartesianNoJoinVars(t *testing.T) {
	// With no shared variables the join is a cartesian product over
	// different variables.
	l := joinStream([]kg.ID{1, 2}, []float64{1.0, 0.4}, 2, 0, 0)
	r := joinStream([]kg.ID{7, 8}, []float64{0.9, 0.3}, 2, 1, 0)
	rj := NewRankJoin(l, r, nil, nil)
	es := Drain(rj)
	if len(es) != 4 {
		t.Fatalf("cartesian: got %d want 4", len(es))
	}
	if !IsSortedDesc(es) {
		t.Fatal("cartesian output not sorted")
	}
	if math.Abs(es[0].Score-1.9) > 1e-12 {
		t.Fatalf("top cartesian score: got %v want 1.9", es[0].Score)
	}
}

func TestRankJoinMemoryCounter(t *testing.T) {
	l := joinStream([]kg.ID{1, 2}, []float64{1, 0.5}, 1, 0, 0)
	r := joinStream([]kg.ID{1, 2}, []float64{1, 0.5}, 1, 0, 0)
	c := &Counter{}
	rj := NewRankJoin(l, r, []int{0}, c)
	Drain(rj)
	// 2 join results created; input entries are counted by their producers.
	if c.Value() != 2 {
		t.Fatalf("counter: got %d want 2", c.Value())
	}
}

func TestJoinVars(t *testing.T) {
	l := map[int]bool{0: true, 2: true, 5: true}
	r := map[int]bool{2: true, 5: true, 7: true}
	got := JoinVars(l, r)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("join vars: got %v want [2 5]", got)
	}
	if got := JoinVars(l, map[int]bool{9: true}); len(got) != 0 {
		t.Fatalf("disjoint vars: got %v", got)
	}
}

func TestLeftDeepThreeWay(t *testing.T) {
	// Entities 1..4, three "patterns" all binding var 0.
	s1 := joinStream([]kg.ID{1, 2, 3, 4}, []float64{1.0, 0.9, 0.8, 0.7}, 1, 0, 0)
	s2 := joinStream([]kg.ID{2, 3}, []float64{1.0, 0.5}, 1, 0, 0)
	s3 := joinStream([]kg.ID{3, 2}, []float64{1.0, 0.2}, 1, 0, 0)
	vars := []map[int]bool{{0: true}, {0: true}, {0: true}}
	root := LeftDeep([]Stream{s1, s2, s3}, vars, nil)
	es := Drain(root)
	// id2: 0.9+1.0+0.2 = 2.1; id3: 0.8+0.5+1.0 = 2.3 → id3 first.
	if len(es) != 2 {
		t.Fatalf("got %d results want 2", len(es))
	}
	if es[0].Binding[0] != 3 || math.Abs(es[0].Score-2.3) > 1e-12 {
		t.Fatalf("first: %+v", es[0])
	}
	if es[1].Binding[0] != 2 || math.Abs(es[1].Score-2.1) > 1e-12 {
		t.Fatalf("second: %+v", es[1])
	}
}

func TestLeftDeepEmpty(t *testing.T) {
	root := LeftDeep(nil, nil, nil)
	if _, ok := root.Next(); ok {
		t.Fatal("empty left-deep tree produced an entry")
	}
	if root.TopScore() != 0 || root.Bound() != 0 {
		t.Fatal("empty stream bounds must be zero")
	}
}

func TestLeftDeepSingle(t *testing.T) {
	s := joinStream([]kg.ID{1}, []float64{0.6}, 1, 0, 0)
	root := LeftDeep([]Stream{s}, []map[int]bool{{0: true}}, nil)
	es := Drain(root)
	if len(es) != 1 || es[0].Score != 0.6 {
		t.Fatalf("single stream left-deep: %v", es)
	}
}

func TestPatternBoundVars(t *testing.T) {
	q := kg.NewQuery(
		kg.NewPattern(kg.Var("s"), kg.Const(1), kg.Var("o")),
		kg.NewPattern(kg.Var("o"), kg.Const(2), kg.Var("z")),
	)
	vs := kg.NewVarSet(q)
	got := PatternBoundVars(vs, q.Patterns[0])
	if !got[0] || !got[1] || got[2] {
		t.Fatalf("bound vars of pattern 0: %v", got)
	}
	got1 := PatternBoundVars(vs, q.Patterns[1])
	if got1[0] || !got1[1] || !got1[2] {
		t.Fatalf("bound vars of pattern 1: %v", got1)
	}
}
