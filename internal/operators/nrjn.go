package operators

import (
	"specqp/internal/kg"
	"specqp/internal/trace"
)

// NRJN is the Nested-loops Rank Join variant (Ilyas et al., VLDB 2003): like
// HRJN it emits join results in descending score order with the same corner
// bound, but it stores no hash tables — whenever an outer entry arrives, the
// inner stream is re-scanned from the start. It trades memory (no stored
// inputs) for repeated inner scans, and is included as the rank-join
// strategy ablation. Join-key comparison and emitted-binding dedup use
// packed kg.BindingKeys; merged bindings come from a slab arena.
//
// The inner input must be Resettable.
type NRJN struct {
	outer    Stream
	inner    Resettable
	joinVars []int
	counter  *Counter

	joinKeyer *kg.Keyer
	emitKeyer *kg.Keyer
	arena     bindingArena
	queue     []Entry
	emitted   map[kg.BindingKey]bool
	done      bool
	pulls     int // inner pulls since the last abort poll
	aborted   bool
	top       float64
	last      float64
	primed    bool
	stats     *trace.Node // nil unless the execution is traced
}

// NewNRJN builds a nested-loops rank join of outer with inner.
func NewNRJN(outer Stream, inner Resettable, joinVars []int, c *Counter) *NRJN {
	n := &NRJN{
		outer:     outer,
		inner:     inner,
		joinVars:  joinVars,
		counter:   c,
		joinKeyer: kg.NewProjKeyer(joinVars),
		emitKeyer: kg.NewKeyer(),
		emitted:   make(map[kg.BindingKey]bool),
	}
	if c.Tracing() {
		n.stats = trace.NewNode("NRJN")
	}
	return n
}

func (n *NRJN) prime() {
	if n.primed {
		return
	}
	n.primed = true
	n.top = n.outer.TopScore() + n.inner.TopScore()
	n.last = n.top
	n.stats.SetTop(n.top)
}

// TopScore implements Stream.
func (n *NRJN) TopScore() float64 { n.prime(); return n.top }

// Bound implements Stream.
func (n *NRJN) Bound() float64 {
	n.prime()
	b := n.threshold()
	if len(n.queue) > 0 && n.queue[0].Score > b {
		b = n.queue[0].Score
	}
	if b > n.last {
		b = n.last
	}
	return b
}

func (n *NRJN) threshold() float64 {
	if n.done {
		return 0
	}
	// Unseen results involve an unseen outer entry joined with any inner
	// entry; inner is fully re-scanned per outer step, so the bound is
	// bound(outer) + top(inner).
	return n.outer.Bound() + n.inner.TopScore()
}

func (n *NRJN) step() bool {
	o, ok := n.outer.Next()
	if !ok {
		n.done = true
		return false
	}
	key := n.joinKeyer.Key(o.Binding)
	n.inner.Reset()
	n.stats.Rescan()
	for {
		if n.pulls >= AbortStride {
			n.pulls = 0
			n.stats.AbortPoll()
			if n.counter.Aborted() {
				n.aborted = true
				return false
			}
		}
		n.pulls++
		n.stats.Pull()
		ie, ok := n.inner.Next()
		if !ok {
			break
		}
		if n.joinKeyer.Key(ie.Binding) != key {
			continue
		}
		if !o.Binding.CompatibleWith(ie.Binding) {
			continue
		}
		n.counter.Inc()
		n.stats.Created()
		heapPush(&n.queue, Entry{
			Binding: n.arena.merge(o.Binding, ie.Binding),
			Score:   o.Score + ie.Score,
			Relaxed: o.Relaxed | ie.Relaxed,
		})
	}
	return true
}

// Next implements Stream. Like RankJoin.Next it polls the counter's abort
// hook at a bounded stride inside the re-scan loop, so a cancelled query
// stops mid-scan instead of completing every remaining inner pass.
func (n *NRJN) Next() (Entry, bool) {
	n.prime()
	for {
		if n.aborted {
			return Entry{}, false
		}
		if t := n.threshold(); len(n.queue) > 0 && n.queue[0].Score >= t-1e-12 {
			e := heapPop(&n.queue)
			k := n.emitKeyer.Key(e.Binding)
			if n.emitted[k] {
				n.stats.DedupDrop()
				continue
			}
			n.emitted[k] = true
			n.last = e.Score
			if n.stats != nil {
				n.stats.Emit()
				n.stats.SampleBound(t)
				n.stats.SetArenaBytes(n.arena.bytes())
			}
			return e, true
		}
		if n.done {
			for len(n.queue) > 0 {
				e := heapPop(&n.queue)
				k := n.emitKeyer.Key(e.Binding)
				if n.emitted[k] {
					n.stats.DedupDrop()
					continue
				}
				n.emitted[k] = true
				n.last = e.Score
				if n.stats != nil {
					n.stats.Emit()
					n.stats.SampleBound(0)
					n.stats.SetArenaBytes(n.arena.bytes())
				}
				return e, true
			}
			n.last = 0
			return Entry{}, false
		}
		n.step()
	}
}
