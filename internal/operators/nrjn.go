package operators

import (
	"container/heap"
)

// NRJN is the Nested-loops Rank Join variant (Ilyas et al., VLDB 2003): like
// HRJN it emits join results in descending score order with the same corner
// bound, but it stores no hash tables — whenever an outer entry arrives, the
// inner stream is re-scanned from the start. It trades memory (no stored
// inputs) for repeated inner scans, and is included as the rank-join
// strategy ablation.
//
// The inner input must be Resettable.
type NRJN struct {
	outer    Stream
	inner    Resettable
	joinVars []int
	counter  *Counter

	queue   resultHeap
	emitted map[string]bool
	done    bool
	top     float64
	last    float64
	primed  bool
}

// NewNRJN builds a nested-loops rank join of outer with inner.
func NewNRJN(outer Stream, inner Resettable, joinVars []int, c *Counter) *NRJN {
	return &NRJN{
		outer:    outer,
		inner:    inner,
		joinVars: joinVars,
		counter:  c,
		emitted:  make(map[string]bool),
	}
}

func (n *NRJN) prime() {
	if n.primed {
		return
	}
	n.primed = true
	n.top = n.outer.TopScore() + n.inner.TopScore()
	n.last = n.top
}

// TopScore implements Stream.
func (n *NRJN) TopScore() float64 { n.prime(); return n.top }

// Bound implements Stream.
func (n *NRJN) Bound() float64 {
	n.prime()
	b := n.threshold()
	if len(n.queue) > 0 && n.queue[0].Score > b {
		b = n.queue[0].Score
	}
	if b > n.last {
		b = n.last
	}
	return b
}

func (n *NRJN) threshold() float64 {
	if n.done {
		return 0
	}
	// Unseen results involve an unseen outer entry joined with any inner
	// entry; inner is fully re-scanned per outer step, so the bound is
	// bound(outer) + top(inner).
	return n.outer.Bound() + n.inner.TopScore()
}

func (n *NRJN) step() bool {
	o, ok := n.outer.Next()
	if !ok {
		n.done = true
		return false
	}
	key := joinKeyOf(o, n.joinVars)
	n.inner.Reset()
	for {
		ie, ok := n.inner.Next()
		if !ok {
			break
		}
		if joinKeyOf(ie, n.joinVars) != key {
			continue
		}
		if !o.Binding.CompatibleWith(ie.Binding) {
			continue
		}
		n.counter.Inc()
		heap.Push(&n.queue, Entry{
			Binding: o.Binding.Merge(ie.Binding),
			Score:   o.Score + ie.Score,
			Relaxed: o.Relaxed | ie.Relaxed,
		})
	}
	return true
}

// Next implements Stream.
func (n *NRJN) Next() (Entry, bool) {
	n.prime()
	for {
		if len(n.queue) > 0 && n.queue[0].Score >= n.threshold()-1e-12 {
			e := heap.Pop(&n.queue).(Entry)
			k := e.Binding.Key()
			if n.emitted[k] {
				continue
			}
			n.emitted[k] = true
			n.last = e.Score
			return e, true
		}
		if n.done {
			for len(n.queue) > 0 {
				e := heap.Pop(&n.queue).(Entry)
				k := e.Binding.Key()
				if n.emitted[k] {
					continue
				}
				n.emitted[k] = true
				n.last = e.Score
				return e, true
			}
			n.last = 0
			return Entry{}, false
		}
		n.step()
	}
}

func joinKeyOf(e Entry, joinVars []int) string {
	buf := make([]byte, 0, len(joinVars)*4)
	for _, v := range joinVars {
		id := e.Binding[v]
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(buf)
}
