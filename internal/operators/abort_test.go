package operators

import (
	"testing"

	"specqp/internal/kg"
)

// countingStream wraps a Stream and counts Next pulls, so abort tests can
// assert the operator stopped consuming input within the AbortStride bound.
type countingStream struct {
	inner Stream
	pulls int
}

func (c *countingStream) Next() (Entry, bool) {
	c.pulls++
	return c.inner.Next()
}
func (c *countingStream) TopScore() float64 { return c.inner.TopScore() }
func (c *countingStream) Bound() float64    { return c.inner.Bound() }

// bigSides builds two n-entry sides sharing every binding, so a full join
// yields n results and requires ~2n input pulls.
func bigSides(n int) (*countingStream, *countingStream) {
	mk := func() *countingStream {
		es := make([]Entry, n)
		for i := 0; i < n; i++ {
			b := kg.NewBinding(1)
			b[0] = kg.ID(i)
			es[i] = Entry{Binding: b, Score: float64(2*n - i)}
		}
		return &countingStream{inner: &sliceStream{entries: es}}
	}
	return mk(), mk()
}

func TestRankJoinAbortBoundsPulls(t *testing.T) {
	const n = 50 * AbortStride
	l, r := bigSides(n)
	c := &Counter{}
	c.SetAbort(func() bool { return true })
	rj := NewRankJoin(l, r, []int{0}, c)
	out := Drain(rj)
	// The abort fires at the first stride boundary: the operator may emit at
	// most a stride's worth of results and must stop pulling input.
	if len(out) > AbortStride {
		t.Fatalf("aborted join emitted %d results (stride %d)", len(out), AbortStride)
	}
	if got := l.pulls + r.pulls; got > 2*AbortStride+2 {
		t.Fatalf("aborted join pulled %d inputs (want <= %d)", got, 2*AbortStride+2)
	}
	// A second Next after abort stays terminated.
	if _, ok := rj.Next(); ok {
		t.Fatal("aborted join produced another entry")
	}
}

func TestRankJoinNoAbortDrainsFully(t *testing.T) {
	const n = 3 * AbortStride
	l, r := bigSides(n)
	c := &Counter{}
	c.SetAbort(func() bool { return false })
	out := Drain(NewRankJoin(l, r, []int{0}, c))
	if len(out) != n {
		t.Fatalf("non-aborted join emitted %d results, want %d", len(out), n)
	}
}

func TestIncrementalMergeAbortBoundsPulls(t *testing.T) {
	const n = 50 * AbortStride
	a, b := bigSides(n)
	c := &Counter{}
	aborted := false
	c.SetAbort(func() bool { return aborted })
	m := NewIncrementalMerge([]Stream{a, b}, c)
	// Consume a few entries live, then abort: the merge must terminate within
	// one stride of further pulls.
	for i := 0; i < 10; i++ {
		if _, ok := m.Next(); !ok {
			t.Fatal("merge exhausted prematurely")
		}
	}
	aborted = true
	extra := 0
	for {
		if _, ok := m.Next(); !ok {
			break
		}
		extra++
		if extra > AbortStride {
			t.Fatalf("merge emitted %d entries after abort (stride %d)", extra, AbortStride)
		}
	}
	if got := a.pulls + b.pulls; got > 10+AbortStride+4 {
		t.Fatalf("aborted merge pulled %d inputs", got)
	}
}

func TestNRJNAbortTerminates(t *testing.T) {
	const n = 50 * AbortStride
	outer, _ := bigSides(n)
	es := make([]Entry, n)
	for i := 0; i < n; i++ {
		b := kg.NewBinding(1)
		b[0] = kg.ID(i)
		es[i] = Entry{Binding: b, Score: float64(2*n - i)}
	}
	inner := &sliceStream{entries: es}
	c := &Counter{}
	c.SetAbort(func() bool { return true })
	nj := NewNRJN(outer, inner, []int{0}, c)
	out := Drain(nj)
	if len(out) > AbortStride {
		t.Fatalf("aborted NRJN emitted %d results", len(out))
	}
	if _, ok := nj.Next(); ok {
		t.Fatal("aborted NRJN produced another entry")
	}
}
