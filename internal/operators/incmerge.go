package operators

import (
	"fmt"

	"specqp/internal/kg"
	"specqp/internal/trace"
)

// IncrementalMerge folds one triple pattern's original match stream and the
// streams of all its relaxations into a single stream sorted by effective
// score (weight × normalised score), deduplicating bindings across inputs
// (the first occurrence carries the maximum effective score, satisfying the
// max-over-derivations rule of Definition 8).
//
// The implementation is a lazy k-way heap merge: each input advances only
// when its current head is globally next, so lists whose relaxation weight is
// low are barely read — this is exactly what makes TriniT cheaper than the
// naive evaluate-everything baseline. Dedup is integer-keyed (packed
// kg.BindingKeys) and the head heap is hand-rolled, so steady-state merging
// allocates nothing beyond what the inputs themselves produce.
type IncrementalMerge struct {
	inputs []Stream
	// nonResettable is the index of the first input that does not implement
	// Resettable, or -1 when every input does (the invariant Reset needs).
	// It is established at construction so a Reset on an unresettable merge
	// fails with a diagnostic instead of a bare type-assertion panic.
	nonResettable int
	heads         []mergeHead
	seen          map[kg.BindingKey]bool
	keyer         *kg.Keyer
	counter       *Counter
	pulls         int  // input pulls since the last abort poll
	aborted       bool // sticky: once aborted, the stream stays exhausted
	top           float64
	last          float64
	primed        bool
	stats         *trace.Node // nil unless the execution is traced
}

type mergeHead struct {
	entry Entry
	src   int
}

// heapLess orders heads by score descending with input index as tie-break.
func (h mergeHead) heapLess(o mergeHead) bool {
	if h.entry.Score != o.entry.Score {
		return h.entry.Score > o.entry.Score
	}
	return h.src < o.src
}

// NewIncrementalMerge merges the given streams. Inputs must each be sorted by
// score descending; stream 0 is conventionally the original pattern. The
// counter records merged-entry creations.
func NewIncrementalMerge(inputs []Stream, c *Counter) *IncrementalMerge {
	m := &IncrementalMerge{
		inputs:        inputs,
		nonResettable: -1,
		seen:          make(map[kg.BindingKey]bool),
		keyer:         kg.NewKeyer(),
		counter:       c,
	}
	for i, in := range inputs {
		if _, ok := in.(Resettable); !ok {
			m.nonResettable = i
			break
		}
	}
	if c.Tracing() {
		m.stats = trace.NewNode("IncrementalMerge")
	}
	return m
}

func (m *IncrementalMerge) prime() {
	if m.primed {
		return
	}
	m.primed = true
	for i, in := range m.inputs {
		if e, ok := in.Next(); ok {
			heapPush(&m.heads, mergeHead{entry: e, src: i})
		}
	}
	if len(m.heads) > 0 {
		m.top = m.heads[0].entry.Score
	}
	m.last = m.top
	m.stats.SetTop(m.top)
}

// TopScore implements Stream.
func (m *IncrementalMerge) TopScore() float64 {
	m.prime()
	return m.top
}

// Bound implements Stream.
func (m *IncrementalMerge) Bound() float64 {
	m.prime()
	return m.last
}

// Next implements Stream.
//
// Dedup-heavy inputs can make one Next call pull many entries before an
// unseen binding surfaces, so the loop polls the counter's abort hook every
// AbortStride pulls (see RankJoin.Next) and reports exhaustion when it fires.
func (m *IncrementalMerge) Next() (Entry, bool) {
	m.prime()
	for len(m.heads) > 0 {
		if m.aborted {
			return Entry{}, false
		}
		if m.pulls >= AbortStride {
			m.pulls = 0
			m.stats.AbortPoll()
			if m.counter.Aborted() {
				m.aborted = true
				m.last = 0
				return Entry{}, false
			}
		}
		m.pulls++
		m.stats.Pull()
		h := m.heads[0]
		if e, ok := m.inputs[h.src].Next(); ok {
			m.heads[0] = mergeHead{entry: e, src: h.src}
			heapFixRoot(m.heads)
		} else {
			heapPop(&m.heads)
		}
		key := m.keyer.Key(h.entry.Binding)
		if m.seen[key] {
			m.stats.DedupDrop()
			continue
		}
		m.seen[key] = true
		m.last = h.entry.Score
		m.counter.Inc()
		if m.stats != nil {
			m.stats.Emit()
			m.stats.SampleBound(h.entry.Score)
		}
		return h.entry, true
	}
	m.last = 0
	return Entry{}, false
}

// CanReset reports whether every input implements Resettable — the
// precondition of Reset.
func (m *IncrementalMerge) CanReset() bool { return m.nonResettable < 0 }

// Reset implements Resettable when every input does; check CanReset before
// calling on merges built over arbitrary streams. Calling Reset on a merge
// with a non-resettable input panics with a diagnostic identifying the
// input, rather than an opaque type-assertion failure mid-restart.
func (m *IncrementalMerge) Reset() {
	if m.nonResettable >= 0 {
		panic(fmt.Sprintf(
			"operators: IncrementalMerge.Reset: input %d (%T) does not implement Resettable; the merge is resettable only when every input is",
			m.nonResettable, m.inputs[m.nonResettable]))
	}
	for _, in := range m.inputs {
		in.(Resettable).Reset()
	}
	m.heads = m.heads[:0]
	clear(m.seen)
	m.keyer.Reset()
	m.primed = false
	m.last = 0
}
