package operators

import (
	"container/heap"
)

// IncrementalMerge folds one triple pattern's original match stream and the
// streams of all its relaxations into a single stream sorted by effective
// score (weight × normalised score), deduplicating bindings across inputs
// (the first occurrence carries the maximum effective score, satisfying the
// max-over-derivations rule of Definition 8).
//
// The implementation is a lazy k-way heap merge: each input advances only
// when its current head is globally next, so lists whose relaxation weight is
// low are barely read — this is exactly what makes TriniT cheaper than the
// naive evaluate-everything baseline.
type IncrementalMerge struct {
	inputs  []Stream
	heads   mergeHeap
	seen    map[string]bool
	counter *Counter
	top     float64
	last    float64
	primed  bool
}

type mergeHead struct {
	entry Entry
	src   int
}

type mergeHeap []mergeHead

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].entry.Score != h[j].entry.Score {
		return h[i].entry.Score > h[j].entry.Score
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewIncrementalMerge merges the given streams. Inputs must each be sorted by
// score descending; stream 0 is conventionally the original pattern. The
// counter records merged-entry creations.
func NewIncrementalMerge(inputs []Stream, c *Counter) *IncrementalMerge {
	return &IncrementalMerge{inputs: inputs, seen: make(map[string]bool), counter: c}
}

func (m *IncrementalMerge) prime() {
	if m.primed {
		return
	}
	m.primed = true
	for i, in := range m.inputs {
		if e, ok := in.Next(); ok {
			m.heads = append(m.heads, mergeHead{entry: e, src: i})
		}
	}
	heap.Init(&m.heads)
	if len(m.heads) > 0 {
		m.top = m.heads[0].entry.Score
	}
	m.last = m.top
}

// TopScore implements Stream.
func (m *IncrementalMerge) TopScore() float64 {
	m.prime()
	return m.top
}

// Bound implements Stream.
func (m *IncrementalMerge) Bound() float64 {
	m.prime()
	return m.last
}

// Next implements Stream.
func (m *IncrementalMerge) Next() (Entry, bool) {
	m.prime()
	for len(m.heads) > 0 {
		h := m.heads[0]
		if e, ok := m.inputs[h.src].Next(); ok {
			m.heads[0] = mergeHead{entry: e, src: h.src}
			heap.Fix(&m.heads, 0)
		} else {
			heap.Pop(&m.heads)
		}
		key := h.entry.Binding.Key()
		if m.seen[key] {
			continue
		}
		m.seen[key] = true
		m.last = h.entry.Score
		m.counter.Inc()
		return h.entry, true
	}
	m.last = 0
	return Entry{}, false
}

// Reset implements Resettable when every input does.
func (m *IncrementalMerge) Reset() {
	for _, in := range m.inputs {
		in.(Resettable).Reset()
	}
	m.heads = nil
	m.seen = make(map[string]bool)
	m.primed = false
	m.last = 0
}
