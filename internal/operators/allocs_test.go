package operators

import (
	"fmt"
	"testing"

	"specqp/internal/kg"
)

// dupFreeStore builds a store with no duplicate (s,p,o) triples, so scans
// over patterns whose variables are all in the query's variable set qualify
// for the dedup-free fast path.
func dupFreeStore(t testing.TB) *kg.Store {
	t.Helper()
	st := kg.NewStore(nil)
	for i := 0; i < 64; i++ {
		s := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"}[i%8]
		o := []string{"A", "B", "C", "D"}[(i/8)%4]
		p := []string{"type", "likes"}[(i/32)%2]
		if err := st.AddSPO(s, p, o, float64(100-i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	if st.HasDuplicates() {
		t.Fatal("test store unexpectedly has duplicate triples")
	}
	return st
}

// TestListScanNextZeroAllocs is the acceptance-criterion guard: on a
// duplicate-free pattern, the scan's steady state (drain, reset, drain
// again) performs zero heap allocations — the scratch binding, compiled
// binder and slab arena leave nothing to allocate per candidate or per
// emitted entry.
func TestListScanNextZeroAllocs(t *testing.T) {
	st := dupFreeStore(t)
	ty, _ := st.Dict().Lookup("type")
	pat := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Var("o"))
	vs := kg.NewVarSet(kg.NewQuery(pat))
	s := NewListScan(st, vs, pat, 1, 0, nil)
	// First pass sizes the arena slabs.
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		s.Reset()
		for {
			if _, ok := s.Next(); !ok {
				return
			}
		}
	}); allocs != 0 {
		t.Fatalf("steady-state scan: %v allocs per drain, want 0", allocs)
	}
}

// TestListScanDedupPathSteadyAllocs pins the dedup path too: a store with
// duplicate triples needs the seen map, but after the first drain sizes map,
// keyer and arena, resets stay allocation-free (packed keys, reused slabs).
func TestListScanDedupPathSteadyAllocs(t *testing.T) {
	st := kg.NewStore(nil)
	for i := 0; i < 16; i++ {
		if err := st.AddSPO("e", "type", []string{"A", "B"}[i%2], float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	if !st.HasDuplicates() {
		t.Fatal("test store should have duplicate triples")
	}
	ty, _ := st.Dict().Lookup("type")
	pat := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Var("o"))
	vs := kg.NewVarSet(kg.NewQuery(pat))
	s := NewListScan(st, vs, pat, 1, 0, nil)
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		s.Reset()
		for {
			if _, ok := s.Next(); !ok {
				return
			}
		}
	}); allocs != 0 {
		t.Fatalf("steady-state dedup scan: %v allocs per drain, want 0", allocs)
	}
}

// TestLiveStoreScanZeroAllocsWithEmptyHead extends the acceptance guard to
// the live-ingest layer: a store that has been mutated through Insert and
// then compacted (empty head attached to the frozen segment) must serve the
// same zero-allocation scan steady state as a store frozen once — the
// snapshot indirection and the head-overlay plumbing cost nothing when the
// head is empty.
func TestLiveStoreScanZeroAllocsWithEmptyHead(t *testing.T) {
	st := dupFreeStore(t)
	// Mutate live with more duplicate-free triples, then compact so the head
	// is empty again.
	for i := 0; i < 32; i++ {
		s := []string{"f1", "f2", "f3", "f4"}[i%4]
		o := fmt.Sprintf("E%d", i/4)
		if err := st.InsertSPO(s, "type", o, float64(200-i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Compact()
	if st.HeadLen() != 0 {
		t.Fatalf("head holds %d triples after Compact", st.HeadLen())
	}
	if st.HasDuplicates() {
		t.Fatal("live inserts unexpectedly created duplicates")
	}
	ty, _ := st.Dict().Lookup("type")
	pat := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Var("o"))
	if allocs := testing.AllocsPerRun(100, func() {
		if len(st.MatchList(pat)) == 0 {
			t.Fatal("empty match list")
		}
	}); allocs != 0 {
		t.Fatalf("compacted-store MatchList: %v allocs, want 0", allocs)
	}
	vs := kg.NewVarSet(kg.NewQuery(pat))
	s := NewListScan(st, vs, pat, 1, 0, nil)
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		s.Reset()
		for {
			if _, ok := s.Next(); !ok {
				return
			}
		}
	}); allocs != 0 {
		t.Fatalf("steady-state scan over compacted live store: %v allocs per drain, want 0", allocs)
	}
}

// TestMutatedStoreScanZeroAllocsAfterCompact extends the empty-head guard to
// full mutability: a store that has absorbed deletes and latest-wins updates
// and then compacted (tombstones GC'd, dead rows dropped) must serve the same
// zero-allocation MatchList and scan steady state — the liveness filtering
// that deletes introduce costs nothing once no tombstone is pending.
func TestMutatedStoreScanZeroAllocsAfterCompact(t *testing.T) {
	st := dupFreeStore(t)
	for i := 0; i < 32; i++ {
		s := []string{"f1", "f2", "f3", "f4"}[i%4]
		o := fmt.Sprintf("E%d", i/4)
		if err := st.InsertSPO(s, "type", o, float64(200-i)); err != nil {
			t.Fatal(err)
		}
	}
	// Retract a frozen-segment fact and a head fact, re-score another.
	d := st.Dict()
	del := func(s, p, o string) {
		t.Helper()
		if _, err := st.Delete(d.Encode(s), d.Encode("type"), d.Encode(o)); err != nil {
			t.Fatal(err)
		}
	}
	del("e1", "type", "A")
	del("f2", "type", "E3")
	if err := st.Update(kg.Triple{S: d.Encode("e2"), P: d.Encode("type"), O: d.Encode("B"), Score: 77}); err != nil {
		t.Fatal(err)
	}
	st.Compact()
	if st.Tombstones() != 0 || st.HeadLen() != 0 {
		t.Fatalf("Compact left %d tombstones, %d head triples", st.Tombstones(), st.HeadLen())
	}
	if st.HasDuplicates() {
		t.Fatal("mutations unexpectedly created duplicates")
	}
	ty, _ := st.Dict().Lookup("type")
	pat := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Var("o"))
	if allocs := testing.AllocsPerRun(100, func() {
		if len(st.MatchList(pat)) == 0 {
			t.Fatal("empty match list")
		}
	}); allocs != 0 {
		t.Fatalf("post-delete compacted MatchList: %v allocs, want 0", allocs)
	}
	vs := kg.NewVarSet(kg.NewQuery(pat))
	s := NewListScan(st, vs, pat, 1, 0, nil)
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		s.Reset()
		for {
			if _, ok := s.Next(); !ok {
				return
			}
		}
	}); allocs != 0 {
		t.Fatalf("steady-state scan over mutated compacted store: %v allocs per drain, want 0", allocs)
	}
}

// TestListScanSkipsDedupMap asserts the fast-path predicate itself: no seen
// map on provably duplicate-free patterns, a seen map as soon as duplicates
// or out-of-varset variables make one necessary.
func TestListScanSkipsDedupMap(t *testing.T) {
	st := dupFreeStore(t)
	ty, _ := st.Dict().Lookup("type")
	pat := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Var("o"))
	vs := kg.NewVarSet(kg.NewQuery(pat))
	if s := NewListScan(st, vs, pat, 1, 0, nil); s.seen != nil {
		t.Fatal("duplicate-free pattern should not carry a dedup map")
	}
	// A pattern variable outside the query's variable set collapses
	// distinct triples onto one binding — dedup must be on.
	fresh := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Var("zzz_not_in_query"))
	if s := NewListScan(st, vs, fresh, 1, 0, nil); s.seen == nil {
		t.Fatal("out-of-varset variable requires the dedup map")
	}
	// Semantics stay correct: the fresh-var scan dedups to distinct subjects.
	es := Drain(NewListScan(st, vs, fresh, 1, 0, nil))
	subjects := map[kg.ID]bool{}
	for _, e := range es {
		if subjects[e.Binding[0]] {
			t.Fatal("fresh-var scan emitted a duplicate binding")
		}
		subjects[e.Binding[0]] = true
	}
}
