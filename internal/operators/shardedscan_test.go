package operators

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"specqp/internal/kg"
)

// randomOpStore builds a flat store with score ties and duplicate (s,p,o)
// keys — the shapes that stress merge tie-breaking and dedup.
func randomOpStore(t testing.TB, seed int64, n int) *kg.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	st := kg.NewStore(nil)
	for st.Dict().Len() < 16 {
		st.Dict().Encode(fmt.Sprintf("t%d", st.Dict().Len()))
	}
	add := func(s, p, o kg.ID, sc float64) {
		if err := st.Add(kg.Triple{S: s, P: p, O: o, Score: sc}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		s, p, o := kg.ID(rng.Intn(8)), kg.ID(8+rng.Intn(3)), kg.ID(11+rng.Intn(5))
		add(s, p, o, float64(1+rng.Intn(20)))
		if rng.Intn(4) == 0 {
			add(s, p, o, float64(1+rng.Intn(20)))
		}
	}
	st.Freeze()
	return st
}

// scanPatterns enumerates the scan shapes the merge must reproduce exactly,
// including the cross-shard dedup shape (subject variable outside the
// query's variable set) and score-tied lists.
func scanPatterns() []kg.Pattern {
	var pats []kg.Pattern
	for p := 8; p < 11; p++ {
		pats = append(pats,
			kg.NewPattern(kg.Var("x"), kg.Const(kg.ID(p)), kg.Var("y")),
			kg.NewPattern(kg.Var("x"), kg.Const(kg.ID(p)), kg.Const(kg.ID(11))),
			// Subject outside the variable set: bindings drop the subject, so
			// different shards can produce identical bindings.
			kg.NewPattern(kg.Var("free_subj"), kg.Const(kg.ID(p)), kg.Var("y")),
			kg.NewPattern(kg.Var("free_subj"), kg.Const(kg.ID(p)), kg.Const(kg.ID(12))),
		)
	}
	pats = append(pats,
		kg.NewPattern(kg.Const(kg.ID(3)), kg.Var("x"), kg.Var("y")), // single-shard (S bound)
		kg.NewPattern(kg.Var("x"), kg.Var("y"), kg.Const(kg.ID(13))),
		kg.NewPattern(kg.Var("x"), kg.Var("free_p"), kg.Var("y")),
	)
	return pats
}

// drainStream pulls everything while recording the observable trajectory:
// entries plus the Bound value after every pull.
type observation struct {
	entries []Entry
	bounds  []float64
	top     float64
}

func observe(s Stream) observation {
	o := observation{top: s.TopScore()}
	for {
		e, ok := s.Next()
		o.bounds = append(o.bounds, s.Bound())
		if !ok {
			return o
		}
		o.entries = append(o.entries, e)
	}
}

func compareObservations(t *testing.T, label string, got, want observation) {
	t.Helper()
	if got.top != want.top {
		t.Fatalf("%s: TopScore %v, want %v", label, got.top, want.top)
	}
	if len(got.entries) != len(want.entries) {
		t.Fatalf("%s: %d entries, want %d", label, len(got.entries), len(want.entries))
	}
	for i := range got.entries {
		g, w := got.entries[i], want.entries[i]
		if g.Score != w.Score || g.Relaxed != w.Relaxed || g.Binding.Compare(w.Binding) != 0 {
			t.Fatalf("%s: entry %d is %v, want %v", label, i, g, w)
		}
	}
	if len(got.bounds) != len(want.bounds) {
		t.Fatalf("%s: %d bound samples, want %d", label, len(got.bounds), len(want.bounds))
	}
	for i := range got.bounds {
		if got.bounds[i] != want.bounds[i] {
			t.Fatalf("%s: bound after pull %d is %v, want %v", label, i, got.bounds[i], want.bounds[i])
		}
	}
}

// TestShardedListScanMatchesListScan is the stream-equivalence property
// test behind the sharded engine's correctness: for every pattern shape and
// shard count, the merged per-shard scan is observationally identical to the
// flat ListScan — same entries, same order (score ties broken by global
// insertion index), same scores, same counter value, same TopScore/Bound
// trajectory.
func TestShardedListScanMatchesListScan(t *testing.T) {
	q := kg.NewQuery(kg.NewPattern(kg.Var("x"), kg.Var("p"), kg.Var("y")))
	vs := kg.NewVarSet(q)
	for trial := int64(0); trial < 5; trial++ {
		st := randomOpStore(t, 600+trial, 250)
		for _, n := range []int{1, 2, 3, 7, 16} {
			ss := kg.NewShardedStoreFrom(st, n)
			for pi, pat := range scanPatterns() {
				var cFlat, cSharded Counter
				want := observe(NewListScan(st, vs, pat, 0.7, 2, &cFlat))
				got := observe(NewShardedListScan(ss, vs, pat, 0.7, 2, &cSharded))
				label := fmt.Sprintf("trial %d shards=%d pattern %d", trial, n, pi)
				compareObservations(t, label, got, want)
				if cFlat.Value() != cSharded.Value() {
					t.Fatalf("%s: sharded counter %d, flat %d", label, cSharded.Value(), cFlat.Value())
				}
			}
		}
	}
}

// TestShardedListScanNormalizedCollapse pins the merge tiebreak on *raw*
// scores: float64 division can collapse two distinct raw scores onto one
// normalised value, and the flat list order (raw score desc, index asc) must
// still be reproduced. The fixture searches for a genuine collapse pair
// (r′ < r with r′/max == r/max), inserts the lower-raw triple with the
// earlier global index under a different subject, and requires the merged
// scan to keep emitting the higher-raw triple first at every shard count.
func TestShardedListScanNormalizedCollapse(t *testing.T) {
	// Find r, max with nextafter(r,0)/max == r/max and r < max.
	var r, r2, max float64
	found := false
	for _, m := range []float64{10, 3, 7, 1e3, 1e16} {
		for _, base := range []float64{1e15, 3e14, 7.7e15, 1e16 / 3} {
			if base >= m*1e15 { // keep r < max after scaling
				continue
			}
			cand := base
			cand2 := nextAfterDown(cand)
			mx := m * 1e15
			if cand2 != cand && cand/mx == cand2/mx && cand < mx {
				r, r2, max, found = cand, cand2, mx, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no normalisation-collapse pair found on this platform")
	}
	build := func() *kg.Store {
		st := kg.NewStore(nil)
		for st.Dict().Len() < 16 {
			st.Dict().Encode(fmt.Sprintf("t%d", st.Dict().Len()))
		}
		add := func(s, o kg.ID, sc float64) {
			if err := st.Add(kg.Triple{S: s, P: 8, O: o, Score: sc}); err != nil {
				t.Fatal(err)
			}
		}
		// Lower raw score first (earlier global index), spread over many
		// subjects so shards separate the colliding pair somewhere in the
		// ladder. Objects differ between the r and r′ rows — otherwise they
		// would be duplicate (s,p,o) keys and per-shard dedup would hide the
		// collision. The max triple pins the normalisation constant.
		for s := kg.ID(0); s < 8; s++ {
			add(s, 11, r2)
		}
		for s := kg.ID(0); s < 8; s++ {
			add(s, 12, r)
		}
		add(0, 13, max)
		st.Freeze()
		return st
	}
	st := build()
	q := kg.NewQuery(kg.NewPattern(kg.Var("x"), kg.Var("p"), kg.Var("y")))
	vs := kg.NewVarSet(q)
	pat := kg.NewPattern(kg.Var("x"), kg.Const(kg.ID(8)), kg.Var("y"))
	want := observe(NewListScan(st, vs, pat, 1, 0, nil))
	for _, n := range []int{2, 3, 7, 16} {
		ss := kg.NewShardedStoreFrom(st, n)
		got := observe(NewShardedListScan(ss, vs, pat, 1, 0, nil))
		compareObservations(t, fmt.Sprintf("collapse shards=%d", n), got, want)
	}
}

func nextAfterDown(x float64) float64 {
	return math.Nextafter(x, 0)
}

// TestShardedListScanReset pins Resettable behaviour: a reset merged scan
// replays the identical sequence, allocation-free in steady state.
func TestShardedListScanReset(t *testing.T) {
	st := randomOpStore(t, 44, 300)
	ss := kg.NewShardedStoreFrom(st, 4)
	q := kg.NewQuery(kg.NewPattern(kg.Var("x"), kg.Var("p"), kg.Var("y")))
	vs := kg.NewVarSet(q)
	pat := kg.NewPattern(kg.Var("free_subj"), kg.Const(kg.ID(9)), kg.Var("y"))
	s := NewShardedListScan(ss, vs, pat, 1, 0, nil)
	first := observe(s)
	s.Reset()
	second := observe(s)
	compareObservations(t, "replay", second, first)
	if len(first.entries) == 0 {
		t.Fatal("pattern matched nothing; test is vacuous")
	}
}

// TestShardedListScanSteadyAllocs extends the zero-alloc guarantee to the
// sharded scan: after the first drain sizes sub-scan arenas and the merge
// heap, reset+drain cycles allocate nothing.
func TestShardedListScanSteadyAllocs(t *testing.T) {
	st := randomOpStore(t, 9, 400)
	ss := kg.NewShardedStoreFrom(st, 4)
	q := kg.NewQuery(kg.NewPattern(kg.Var("x"), kg.Var("p"), kg.Var("y")))
	vs := kg.NewVarSet(q)
	pat := kg.NewPattern(kg.Var("x"), kg.Const(kg.ID(8)), kg.Var("y"))
	s := NewShardedListScan(ss, vs, pat, 1, 0, nil)
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		s.Reset()
		for {
			if _, ok := s.Next(); !ok {
				return
			}
		}
	}); allocs != 0 {
		t.Fatalf("steady-state sharded scan: %v allocs per drain, want 0", allocs)
	}
}

// TestPrefetchObservationallyIdentical pins the property the parallel
// executor relies on: a prefetched stream exposes the same entries, bounds
// and top score as consuming the inner stream directly.
func TestPrefetchObservationallyIdentical(t *testing.T) {
	st := randomOpStore(t, 123, 300)
	q := kg.NewQuery(kg.NewPattern(kg.Var("x"), kg.Var("p"), kg.Var("y")))
	vs := kg.NewVarSet(q)
	for pi, pat := range scanPatterns() {
		want := observe(NewListScan(st, vs, pat, 1, 0, nil))
		stop := make(chan struct{})
		got := observe(NewPrefetch(NewListScan(st, vs, pat, 1, 0, nil), 8, stop))
		close(stop)
		compareObservations(t, fmt.Sprintf("pattern %d", pi), got, want)
	}
}

// TestPrefetchStopReleasesProducer checks the early-termination path: after
// stop closes mid-stream, the consumer sees end-of-stream instead of
// blocking and the producer goroutine exits (the -race build would flag a
// leaked send otherwise).
func TestPrefetchStopReleasesProducer(t *testing.T) {
	st := randomOpStore(t, 5, 500)
	q := kg.NewQuery(kg.NewPattern(kg.Var("x"), kg.Var("p"), kg.Var("y")))
	vs := kg.NewVarSet(q)
	pat := kg.NewPattern(kg.Var("x"), kg.Const(kg.ID(8)), kg.Var("y"))
	stop := make(chan struct{})
	p := NewPrefetch(NewListScan(st, vs, pat, 1, 0, nil), 2, stop)
	if _, ok := p.Next(); !ok {
		t.Fatal("expected at least one entry")
	}
	close(stop)
	// Drain whatever was buffered before the stop landed; the stream must
	// terminate rather than hang.
	for i := 0; i < 1000; i++ {
		if _, ok := p.Next(); !ok {
			return
		}
	}
	t.Fatal("prefetch did not terminate after stop")
}
