package operators

import (
	"fmt"

	"specqp/internal/kg"
	"specqp/internal/trace"
)

// AnswerScan streams a pre-materialised, score-descending answer list
// (deduplicated by the producer) as a Stream, applying a relaxation weight
// and provenance mask. It backs chain relaxations, whose "sorted answer
// list" is the projected join of the chain rather than a single pattern's
// match list.
type AnswerScan struct {
	answers []kg.Answer
	weight  float64
	mask    uint32
	counter *Counter
	pos     int
	top     float64
	last    float64
	stats   *trace.Node // nil unless the execution is traced
}

// NewAnswerScan wraps answers (sorted by score descending) as a stream.
func NewAnswerScan(answers []kg.Answer, weight float64, mask uint32, c *Counter) *AnswerScan {
	s := &AnswerScan{answers: answers, weight: weight, mask: mask, counter: c}
	if len(answers) > 0 {
		s.top = weight * answers[0].Score
	}
	s.last = s.top
	if c.Tracing() {
		s.stats = trace.NewNode("AnswerScan")
		s.stats.Detail = fmt.Sprintf("%d answers w=%.3f", len(answers), weight)
		s.stats.SetTop(s.top)
	}
	return s
}

// TopScore implements Stream.
func (s *AnswerScan) TopScore() float64 { return s.top }

// Bound implements Stream.
func (s *AnswerScan) Bound() float64 { return s.last }

// Next implements Stream.
func (s *AnswerScan) Next() (Entry, bool) {
	if s.pos >= len(s.answers) {
		s.last = 0
		return Entry{}, false
	}
	a := s.answers[s.pos]
	s.pos++
	score := s.weight * a.Score
	s.last = score
	s.counter.Inc()
	if s.stats != nil {
		s.stats.Pull()
		s.stats.Emit()
		s.stats.SampleBound(score)
	}
	return Entry{Binding: a.Binding, Score: score, Relaxed: s.mask | a.Relaxed}, true
}

// Reset implements Resettable.
func (s *AnswerScan) Reset() {
	s.pos = 0
	s.last = s.top
}
