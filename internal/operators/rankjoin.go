package operators

import (
	"sort"

	"specqp/internal/kg"
	"specqp/internal/trace"
)

// RankJoin is an HRJN-style binary rank join: it joins two score-descending
// streams on their shared variables and emits join results in descending
// order of summed score, reading as little of each input as the corner-bound
// threshold
//
//	T = max( top(L) + bound(R), bound(L) + top(R) )
//
// allows (Ilyas et al.). Hash tables on the join key hold the entries seen so
// far; a priority queue buffers join results until they are provably final.
// All per-entry bookkeeping is integer-keyed: join keys and emitted-binding
// keys are packed kg.BindingKeys, merged bindings come from a slab arena, and
// the result queue is a hand-rolled heap — so the join itself allocates only
// for table/queue growth, never per probe.
type RankJoin struct {
	left, right Stream
	joinVars    []int // variable indexes bound on both sides
	counter     *Counter

	// joinKeyer keys the joinVars projection and is shared by both tables so
	// left and right entries probe each other; emitKeyer keys whole merged
	// bindings for final dedup.
	joinKeyer         *kg.Keyer
	emitKeyer         *kg.Keyer
	arena             bindingArena
	leftTab, rightTab map[kg.BindingKey][]Entry
	queue             []Entry
	emitted           map[kg.BindingKey]bool
	leftDone          bool
	rightDone         bool
	pullLeft          bool // alternation state
	pulls             int  // input pulls since the last abort poll
	aborted           bool // sticky: once aborted, the stream stays exhausted
	top               float64
	last              float64
	cert              float64 // corner bound at the moment of the last emission
	primed            bool
	stats             *trace.Node // nil unless the execution is traced
}

// NewRankJoin joins left and right on the given shared variable indexes
// (indexes into the query's VarSet; compute them with JoinVars).
func NewRankJoin(left, right Stream, joinVars []int, c *Counter) *RankJoin {
	rj := &RankJoin{
		left:      left,
		right:     right,
		joinVars:  joinVars,
		counter:   c,
		joinKeyer: kg.NewProjKeyer(joinVars),
		emitKeyer: kg.NewKeyer(),
		leftTab:   make(map[kg.BindingKey][]Entry),
		rightTab:  make(map[kg.BindingKey][]Entry),
		emitted:   make(map[kg.BindingKey]bool),
	}
	if c.Tracing() {
		rj.stats = trace.NewNode("RankJoin")
	}
	return rj
}

// JoinVars computes the variable indexes bound by both sides, given the sets
// of variable indexes each side binds.
func JoinVars(left, right map[int]bool) []int {
	var out []int
	for v := range left {
		if right[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out) // deterministic order
	return out
}

// threshold computes the HRJN corner bound on unseen join results. Every
// not-yet-enqueued result involves at least one unseen input entry:
//
//	unseen-left × any-right  ≤ bound(L) + top(R)
//	any-left × unseen-right  ≤ top(L) + bound(R)
//
// When a side is exhausted its corner collapses (no unseen entries there).
func (rj *RankJoin) threshold() float64 {
	anyLeftNewRight := rj.left.TopScore() + rj.right.Bound()
	newLeftAnyRight := rj.left.Bound() + rj.right.TopScore()
	switch {
	case rj.leftDone && rj.rightDone:
		return 0
	case rj.leftDone:
		// Only results with an unseen right entry remain possible.
		return anyLeftNewRight
	case rj.rightDone:
		return newLeftAnyRight
	}
	if anyLeftNewRight > newLeftAnyRight {
		return anyLeftNewRight
	}
	return newLeftAnyRight
}

func (rj *RankJoin) prime() {
	if rj.primed {
		return
	}
	rj.primed = true
	rj.top = rj.left.TopScore() + rj.right.TopScore()
	rj.last = rj.top
	rj.cert = rj.top
	rj.stats.SetTop(rj.top)
}

// TopScore implements Stream.
func (rj *RankJoin) TopScore() float64 {
	rj.prime()
	return rj.top
}

// Bound implements Stream.
func (rj *RankJoin) Bound() float64 {
	rj.prime()
	t := rj.threshold()
	if len(rj.queue) > 0 && rj.queue[0].Score > t {
		t = rj.queue[0].Score
	}
	if t > rj.last {
		t = rj.last
	}
	return t
}

// Certificate implements Certified: it returns the corner-bound threshold
// that held at the instant the most recent entry was emitted — the proof that
// no entry surfaced later can outrank it (entry.Score >= Certificate()-eps).
// Before the first emission it returns the initial top-score bound.
func (rj *RankJoin) Certificate() float64 {
	rj.prime()
	return rj.cert
}

// pullOne advances one input (alternating, skipping exhausted sides), probes
// the opposite hash table and enqueues any join results. It returns false
// when both inputs are exhausted.
func (rj *RankJoin) pullOne() bool {
	if rj.leftDone && rj.rightDone {
		return false
	}
	// Alternate, but prefer the side with the larger bound so the threshold
	// drops fast (HRJN* balancing heuristic).
	useLeft := !rj.leftDone
	if !rj.leftDone && !rj.rightDone {
		lb, rb := rj.left.Bound(), rj.right.Bound()
		switch {
		case lb > rb:
			useLeft = true
		case rb > lb:
			useLeft = false
		default:
			useLeft = rj.pullLeft
			rj.pullLeft = !rj.pullLeft
		}
	}
	if useLeft {
		e, ok := rj.left.Next()
		if !ok {
			rj.leftDone = true
			return !rj.rightDone
		}
		key := rj.joinKeyer.Key(e.Binding)
		rj.leftTab[key] = append(rj.leftTab[key], e)
		for _, o := range rj.rightTab[key] {
			rj.enqueue(e, o)
		}
	} else {
		e, ok := rj.right.Next()
		if !ok {
			rj.rightDone = true
			return !rj.leftDone
		}
		key := rj.joinKeyer.Key(e.Binding)
		rj.rightTab[key] = append(rj.rightTab[key], e)
		for _, o := range rj.leftTab[key] {
			rj.enqueue(o, e)
		}
	}
	return true
}

func (rj *RankJoin) enqueue(l, r Entry) {
	if !l.Binding.CompatibleWith(r.Binding) {
		return
	}
	joined := Entry{
		Binding: rj.arena.merge(l.Binding, r.Binding),
		Score:   l.Score + r.Score,
		Relaxed: l.Relaxed | r.Relaxed,
	}
	rj.counter.Inc()
	rj.stats.Created()
	heapPush(&rj.queue, joined)
}

// Next implements Stream.
//
// One Next call can pull an unbounded number of input entries before a join
// result becomes provably final (a join with few or no matches drains both
// inputs inside a single call), so the pull loop polls the counter's abort
// hook every AbortStride pulls: a cancelled query makes the stream report
// exhaustion promptly instead of holding its executor worker for the full
// drain. Results already proven final are still emitted first — cancellation
// never reorders or corrupts the stream, it only truncates it.
func (rj *RankJoin) Next() (Entry, bool) {
	rj.prime()
	for {
		if rj.aborted {
			return Entry{}, false
		}
		if rj.pulls >= AbortStride {
			rj.pulls = 0
			rj.stats.AbortPoll()
			if rj.counter.Aborted() {
				rj.aborted = true
				return Entry{}, false
			}
		}
		if t := rj.threshold(); len(rj.queue) > 0 && rj.queue[0].Score >= t-1e-12 {
			e := heapPop(&rj.queue)
			key := rj.emitKeyer.Key(e.Binding)
			if rj.emitted[key] {
				rj.stats.DedupDrop()
				continue
			}
			rj.emitted[key] = true
			rj.last = e.Score
			rj.cert = t
			if rj.stats != nil {
				rj.stats.Emit()
				rj.stats.SampleBound(t)
				rj.stats.SetArenaBytes(rj.arena.bytes())
			}
			return e, true
		}
		rj.pulls++
		rj.stats.Pull()
		if !rj.pullOne() {
			// Inputs exhausted: flush the queue. The corner bound over unseen
			// results has collapsed (no unseen inputs remain), so every flushed
			// entry certifies at zero.
			for len(rj.queue) > 0 {
				e := heapPop(&rj.queue)
				key := rj.emitKeyer.Key(e.Binding)
				if rj.emitted[key] {
					rj.stats.DedupDrop()
					continue
				}
				rj.emitted[key] = true
				rj.last = e.Score
				rj.cert = 0
				if rj.stats != nil {
					rj.stats.Emit()
					rj.stats.SampleBound(0)
					rj.stats.SetArenaBytes(rj.arena.bytes())
				}
				return e, true
			}
			rj.last = 0
			return Entry{}, false
		}
	}
}

// LeftDeep builds a left-deep rank-join tree over the given streams, joining
// stream i+1 onto the accumulated join of streams 0..i. boundVars[i] is the
// set of variable indexes stream i binds.
func LeftDeep(streams []Stream, boundVars []map[int]bool, c *Counter) Stream {
	if len(streams) == 0 {
		return emptyStream{}
	}
	cur := streams[0]
	curVars := boundVars[0]
	for i := 1; i < len(streams); i++ {
		jv := JoinVars(curVars, boundVars[i])
		cur = NewRankJoin(cur, streams[i], jv, c)
		merged := make(map[int]bool, len(curVars)+len(boundVars[i]))
		for v := range curVars {
			merged[v] = true
		}
		for v := range boundVars[i] {
			merged[v] = true
		}
		curVars = merged
	}
	return cur
}

// emptyStream is a Stream with no entries.
type emptyStream struct{}

func (emptyStream) Next() (Entry, bool) { return Entry{}, false }
func (emptyStream) TopScore() float64   { return 0 }
func (emptyStream) Bound() float64      { return 0 }

// PatternBoundVars returns the set of variable indexes a pattern binds under
// the query's variable set.
func PatternBoundVars(vs *kg.VarSet, p kg.Pattern) map[int]bool {
	out := make(map[int]bool)
	for _, name := range p.Vars() {
		if i := vs.Index(name); i >= 0 {
			out[i] = true
		}
	}
	return out
}
