package operators

import (
	"math"
	"testing"

	"specqp/internal/kg"
)

// scanStore builds a pattern with scores 100, 80, 60, 40 and a second type
// for join tests.
func scanStore(t *testing.T) (*kg.Store, kg.Pattern, kg.Pattern) {
	t.Helper()
	st := kg.NewStore(nil)
	add := func(s, o string, sc float64) {
		if err := st.AddSPO(s, "type", o, sc); err != nil {
			t.Fatal(err)
		}
	}
	add("e1", "A", 100)
	add("e2", "A", 80)
	add("e3", "A", 60)
	add("e4", "A", 40)
	add("e1", "B", 50)
	add("e3", "B", 25)
	st.Freeze()
	ty, _ := st.Dict().Lookup("type")
	a, _ := st.Dict().Lookup("A")
	b, _ := st.Dict().Lookup("B")
	return st,
		kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(a)),
		kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(b))
}

func TestListScanOrderAndNormalisation(t *testing.T) {
	st, pa, _ := scanStore(t)
	vs := kg.NewVarSet(kg.NewQuery(pa))
	c := &Counter{}
	s := NewListScan(st, vs, pa, 1, 0, c)
	es := Drain(s)
	if len(es) != 4 {
		t.Fatalf("entries: got %d want 4", len(es))
	}
	want := []float64{1.0, 0.8, 0.6, 0.4}
	for i, e := range es {
		if math.Abs(e.Score-want[i]) > 1e-12 {
			t.Fatalf("entry %d score: got %v want %v", i, e.Score, want[i])
		}
		if e.Relaxed != 0 {
			t.Fatalf("entry %d relaxed mask: got %b want 0", i, e.Relaxed)
		}
	}
	if !IsSortedDesc(es) {
		t.Fatal("scan output not sorted")
	}
	if c.Value() != 4 {
		t.Fatalf("counter: got %d want 4", c.Value())
	}
}

func TestListScanWeightAndMask(t *testing.T) {
	st, pa, _ := scanStore(t)
	vs := kg.NewVarSet(kg.NewQuery(pa))
	s := NewListScan(st, vs, pa, 0.5, 1<<2, nil)
	es := Drain(s)
	if math.Abs(es[0].Score-0.5) > 1e-12 {
		t.Fatalf("weighted top: got %v want 0.5", es[0].Score)
	}
	if es[0].Relaxed != 4 {
		t.Fatalf("mask: got %b want 100", es[0].Relaxed)
	}
}

func TestListScanBounds(t *testing.T) {
	st, pa, _ := scanStore(t)
	vs := kg.NewVarSet(kg.NewQuery(pa))
	s := NewListScan(st, vs, pa, 1, 0, nil)
	if s.TopScore() != 1 {
		t.Fatalf("top: got %v", s.TopScore())
	}
	if s.Bound() != 1 {
		t.Fatalf("initial bound: got %v", s.Bound())
	}
	s.Next()
	s.Next()
	if got := s.Bound(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("bound after 2 pulls: got %v want 0.8", got)
	}
	Drain(s)
	if s.Bound() != 0 {
		t.Fatalf("bound after exhaustion: got %v", s.Bound())
	}
	if s.TopScore() != 1 {
		t.Fatal("TopScore must not change")
	}
}

func TestListScanReset(t *testing.T) {
	st, pa, _ := scanStore(t)
	vs := kg.NewVarSet(kg.NewQuery(pa))
	s := NewListScan(st, vs, pa, 1, 0, nil)
	first := Drain(s)
	s.Reset()
	second := Drain(s)
	if len(first) != len(second) {
		t.Fatalf("reset changed entry count: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Score != second[i].Score {
			t.Fatal("reset changed scores")
		}
	}
}

func TestListScanEmptyPattern(t *testing.T) {
	st, pa, _ := scanStore(t)
	missing := kg.NewPattern(pa.S, pa.P, kg.Const(kg.ID(999999)))
	st.Dict().Encode("pad") // keep dictionary consistent
	vs := kg.NewVarSet(kg.NewQuery(missing))
	s := NewListScan(st, vs, missing, 1, 0, nil)
	if s.TopScore() != 0 || s.Bound() != 0 {
		t.Fatal("empty scan must have zero bounds")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("empty scan produced an entry")
	}
}

func TestListScanDeduplicatesBindings(t *testing.T) {
	st := kg.NewStore(nil)
	if err := st.AddSPO("e", "type", "A", 10); err != nil {
		t.Fatal(err)
	}
	if err := st.AddSPO("e", "type", "A", 5); err != nil {
		t.Fatal(err)
	}
	st.Freeze()
	ty, _ := st.Dict().Lookup("type")
	a, _ := st.Dict().Lookup("A")
	p := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(a))
	vs := kg.NewVarSet(kg.NewQuery(p))
	es := Drain(NewListScan(st, vs, p, 1, 0, nil))
	if len(es) != 1 {
		t.Fatalf("duplicate triple not deduped: %d entries", len(es))
	}
	if es[0].Score != 1 {
		t.Fatalf("dedup kept %v want the max (1)", es[0].Score)
	}
}

func TestDrainK(t *testing.T) {
	st, pa, _ := scanStore(t)
	vs := kg.NewVarSet(kg.NewQuery(pa))
	s := NewListScan(st, vs, pa, 1, 0, nil)
	es := DrainK(s, 2)
	if len(es) != 2 {
		t.Fatalf("got %d entries want 2", len(es))
	}
	es2 := DrainK(NewListScan(st, vs, pa, 1, 0, nil), 100)
	if len(es2) != 4 {
		t.Fatalf("over-drain: got %d want 4", len(es2))
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := &Counter{}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if c.Value() != 4000 {
		t.Fatalf("counter: got %d want 4000", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
	var nilC *Counter
	nilC.Inc() // must not panic
	nilC.Add(5)
	if nilC.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
}
