package operators

import (
	"math"
	"math/rand"
	"testing"

	"specqp/internal/kg"
)

func TestNRJNMatchesHRJN(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		nl, nr := 1+rng.Intn(20), 1+rng.Intn(20)
		mkSide := func(n, base int) []Entry {
			var es []Entry
			seen := map[kg.ID]bool{}
			v := 1.0
			for i := 0; i < n; i++ {
				id := kg.ID(rng.Intn(10))
				if seen[id] {
					continue
				}
				seen[id] = true
				v *= 0.6 + 0.4*rng.Float64()
				b := kg.NewBinding(1)
				b[0] = id
				es = append(es, Entry{Binding: b, Score: v})
			}
			return es
		}
		l1 := mkSide(nl, 0)
		r1 := mkSide(nr, 100)
		hr := NewRankJoin(&sliceStream{entries: l1}, &sliceStream{entries: r1}, []int{0}, nil)
		hrOut := Drain(hr)

		l2 := &sliceStream{entries: l1}
		r2 := &sliceStream{entries: r1}
		nr2 := NewNRJN(l2, r2, []int{0}, nil)
		nrOut := Drain(nr2)

		if len(hrOut) != len(nrOut) {
			t.Fatalf("trial %d: HRJN %d results, NRJN %d", trial, len(hrOut), len(nrOut))
		}
		for i := range hrOut {
			if math.Abs(hrOut[i].Score-nrOut[i].Score) > 1e-9 {
				t.Fatalf("trial %d pos %d: HRJN %v vs NRJN %v", trial, i, hrOut[i].Score, nrOut[i].Score)
			}
		}
		if !IsSortedDesc(nrOut) {
			t.Fatalf("trial %d: NRJN output not sorted", trial)
		}
	}
}

func TestNRJNEmptyInner(t *testing.T) {
	l := joinStream([]kg.ID{1}, []float64{1}, 1, 0, 0)
	n := NewNRJN(l, &sliceStream{}, []int{0}, nil)
	if es := Drain(n); len(es) != 0 {
		t.Fatalf("empty inner produced %d results", len(es))
	}
}

func TestNRJNCountsMoreObjectsThanHRJN(t *testing.T) {
	// NRJN re-creates join candidates on every outer step, so with skewed
	// data it generally creates at least as many join-result objects as the
	// counter reflects identical join output; the cost difference shows in
	// inner rescans (positions), which we check directly.
	mk := func() ([]kg.ID, []float64) {
		n := 30
		ids := make([]kg.ID, n)
		scores := make([]float64, n)
		for i := 0; i < n; i++ {
			ids[i] = kg.ID(i % 6)
			scores[i] = 1 - float64(i)*0.01
		}
		return ids, scores
	}
	lids, lsc := mk()
	l := &sliceStream{entries: dedupStream(joinStream(lids, lsc, 1, 0, 0))}
	inner := &sliceStream{entries: dedupStream(joinStream(lids, lsc, 1, 0, 0))}
	n := NewNRJN(l, inner, []int{0}, nil)
	Drain(n)
	// Inner must have been fully consumed at least once (rescan behaviour).
	if inner.pos == 0 {
		t.Fatal("inner stream never read")
	}
}

func TestNRJNTopScore(t *testing.T) {
	l := joinStream([]kg.ID{1, 2}, []float64{0.8, 0.4}, 1, 0, 0)
	inner := joinStream([]kg.ID{1, 2}, []float64{0.6, 0.3}, 1, 0, 0)
	n := NewNRJN(l, inner, []int{0}, nil)
	if got := n.TopScore(); math.Abs(got-1.4) > 1e-12 {
		t.Fatalf("top score: got %v want 1.4", got)
	}
}
