package operators

import "specqp/internal/kg"

// arenaChunkEntries is the number of bindings each arena slab holds. Large
// enough to amortise slab allocation to noise, small enough that a scan over
// a short list does not over-allocate.
const arenaChunkEntries = 256

// bindingArena hands out Binding clones backed by shared slabs, replacing
// the per-emitted-entry heap allocation with one allocation per
// arenaChunkEntries entries — and zero after reset, which reuses slabs.
// Bindings returned by clone are invalidated by reset; only resettable
// operators reset, and Resettable documents that Reset invalidates
// previously returned entries.
type bindingArena struct {
	chunks [][]kg.ID // every slab ever allocated, reused across resets
	ci     int       // slab currently being filled
	off    int       // filled prefix of chunks[ci]
}

// clone copies b into the arena and returns the copy, capacity-clamped so a
// caller's append can never clobber a neighbouring binding.
func (a *bindingArena) clone(b kg.Binding) kg.Binding {
	n := len(b)
	if n == 0 {
		return kg.Binding{}
	}
	if len(a.chunks) == 0 {
		a.chunks = append(a.chunks, make([]kg.ID, n*arenaChunkEntries))
	}
	if a.off+n > len(a.chunks[a.ci]) {
		a.ci++
		a.off = 0
		if a.ci == len(a.chunks) {
			a.chunks = append(a.chunks, make([]kg.ID, n*arenaChunkEntries))
		}
	}
	dst := a.chunks[a.ci][a.off : a.off+n : a.off+n]
	copy(dst, b)
	a.off += n
	return kg.Binding(dst)
}

// merge clones l and overlays r's bound positions — Binding.Merge without
// the per-call allocation.
func (a *bindingArena) merge(l, r kg.Binding) kg.Binding {
	m := a.clone(l)
	for i, v := range r {
		if v != kg.NoID {
			m[i] = v
		}
	}
	return m
}

// reset rewinds the arena, invalidating every binding it handed out but
// keeping the slabs for reuse.
func (a *bindingArena) reset() { a.ci, a.off = 0, 0 }

// bytes reports the arena's total slab footprint — the traced execution's
// arena-bytes statistic. Only the owning operator's goroutine calls it.
func (a *bindingArena) bytes() int64 {
	var n int64
	for _, ch := range a.chunks {
		n += int64(len(ch))
	}
	return n * 8
}

// The operator queues are hand-rolled binary max-heaps rather than
// container/heap adapters because heap.Push/Pop box every element in an
// interface{} — one heap allocation per buffered join result — and the
// interface indirection defeats inlining of the comparison. One generic
// implementation serves both element types (join-result Entries and k-way
// merge heads); ordering comes from the element's heapLess method.

// heapLesser orders heap elements; x.heapLess(y) means x sorts strictly
// before (above) y.
type heapLesser[T any] interface{ heapLess(T) bool }

// heapLess orders entries by score descending, with Binding.Compare as the
// deterministic tie-break.
func (e Entry) heapLess(o Entry) bool {
	if e.Score != o.Score {
		return e.Score > o.Score
	}
	return e.Binding.Compare(o.Binding) < 0
}

// heapPush adds x, sifting it up to its heap position.
func heapPush[T heapLesser[T]](h *[]T, x T) {
	*h = append(*h, x)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q[i].heapLess(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// heapFixRoot restores the heap property after the root was replaced in
// place (the k-way merge's advance-the-winning-input step).
func heapFixRoot[T heapLesser[T]](q []T) {
	n := len(q)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q[l].heapLess(q[s]) {
			s = l
		}
		if r < n && q[r].heapLess(q[s]) {
			s = r
		}
		if s == i {
			return
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
}

// heapPop removes and returns the best element, zeroing the vacated slot so
// no binding is retained through the slice's spare capacity.
func heapPop[T heapLesser[T]](h *[]T) T {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	var zero T
	q[n] = zero
	q = q[:n]
	*h = q
	heapFixRoot(q)
	return top
}
