package operators

import (
	"testing"

	"specqp/internal/kg"
)

// traceFixture builds a two-pattern join query over the duplicate-free store:
// a RankJoin of two ListScans, the smallest pipeline that exercises pulls,
// emissions, created objects and the corner bound.
func traceFixture(t testing.TB, c *Counter) (*kg.Store, *RankJoin) {
	t.Helper()
	st := dupFreeStore(t)
	d := st.Dict()
	ty, _ := d.Lookup("type")
	likes, _ := d.Lookup("likes")
	p1 := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Var("o"))
	p2 := kg.NewPattern(kg.Var("s"), kg.Const(likes), kg.Var("o2"))
	vs := kg.NewVarSet(kg.NewQuery(p1, p2))
	l := NewListScan(st, vs, p1, 1, 0, c)
	r := NewListScan(st, vs, p2, 1, 0, c)
	return st, NewRankJoin(l, r, []int{0}, c)
}

// TestTracingBitIdentity is the oracle the tentpole stands on: the same plan
// drained with tracing on and with tracing off must produce byte-identical
// answer sequences — tracing observes the execution, never steers it.
func TestTracingBitIdentity(t *testing.T) {
	plain := &Counter{}
	_, jPlain := traceFixture(t, plain)
	want := Drain(jPlain)

	traced := &Counter{}
	traced.EnableTracing()
	_, jTraced := traceFixture(t, traced)
	got := Drain(jTraced)

	if len(got) != len(want) {
		t.Fatalf("traced drain: %d entries, untraced %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Score != want[i].Score || got[i].Relaxed != want[i].Relaxed {
			t.Fatalf("entry %d diverges: traced %+v untraced %+v", i, got[i], want[i])
		}
		if len(got[i].Binding) != len(want[i].Binding) {
			t.Fatalf("entry %d binding width diverges", i)
		}
		for v := range want[i].Binding {
			if got[i].Binding[v] != want[i].Binding[v] {
				t.Fatalf("entry %d var %d: traced %v untraced %v", i, v, got[i].Binding[v], want[i].Binding[v])
			}
		}
	}

	// The untraced run must carry no trace nodes at all; the traced run must
	// have counted every pull and emission it performed.
	if n := TraceTree(jPlain); n != nil {
		t.Fatalf("untraced pipeline built trace nodes: %+v", n)
	}
	root := TraceTree(jTraced)
	if root == nil {
		t.Fatal("traced pipeline built no trace tree")
	}
	s := root.Snapshot()
	if s.Op != "RankJoin" || len(s.Children) != 2 {
		t.Fatalf("tree shape: %s with %d children", s.Op, len(s.Children))
	}
	if s.Emits != int64(len(want)) {
		t.Fatalf("join emits %d, drained %d", s.Emits, len(want))
	}
	for _, c := range s.Children {
		if c.Op != "ListScan" || c.Pulls == 0 || c.Emits == 0 {
			t.Fatalf("leaf stats missing: %+v", c)
		}
		if c.TopScore == 0 {
			t.Fatalf("leaf top score not stamped: %+v", c)
		}
	}
	if s.Created < s.Emits {
		t.Fatalf("join created %d < emitted %d", s.Created, s.Emits)
	}
}

// TestTraceDisabledZeroAllocs extends the repo's standing alloc guard to the
// tracing seam: the steady-state drain with a live but UNTRACED Counter — the
// exact production hot path after this PR — must still allocate nothing. A
// single stray `if c.Tracing()` that allocates, or a trace node created
// unconditionally, fails this.
func TestTraceDisabledZeroAllocs(t *testing.T) {
	c := &Counter{}
	if c.Tracing() {
		t.Fatal("fresh counter must not trace")
	}
	st := dupFreeStore(t)
	ty, _ := st.Dict().Lookup("type")
	pat := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Var("o"))
	vs := kg.NewVarSet(kg.NewQuery(pat))
	s := NewListScan(st, vs, pat, 1, 0, c)
	if s.stats != nil {
		t.Fatal("untraced scan carries a stats node")
	}
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		s.Reset()
		for {
			if _, ok := s.Next(); !ok {
				return
			}
		}
	}); allocs != 0 {
		t.Fatalf("trace-disabled steady-state scan: %v allocs per drain, want 0", allocs)
	}

	// The pipeline above RankJoin must also build without trace nodes when the
	// shared counter is untraced — TraceTree over it returns nil without ever
	// synthesising anything.
	_, join := traceFixture(t, c)
	Drain(join)
	if TraceTree(join) != nil {
		t.Fatal("untraced join pipeline built trace nodes")
	}
}

// TestTraceTreePrefetch checks the synthesized Prefetch node: the wrapper has
// no counters of its own, so TraceTree must manufacture its node on the fly
// and hang the traced inner stream beneath it — and stay nil for untraced
// pipelines so the disabled path allocates nothing at assembly either.
func TestTraceTreePrefetch(t *testing.T) {
	c := &Counter{}
	c.EnableTracing()
	st := dupFreeStore(t)
	ty, _ := st.Dict().Lookup("type")
	pat := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Var("o"))
	vs := kg.NewVarSet(kg.NewQuery(pat))
	stop := make(chan struct{})
	defer close(stop)
	pf := NewPrefetch(NewListScan(st, vs, pat, 1, 0, c), 4, stop)
	Drain(pf)

	n := TraceTree(pf)
	if n == nil || n.Op != "Prefetch" {
		t.Fatalf("prefetch node: %+v", n)
	}
	s := n.Snapshot()
	if len(s.Children) != 1 || s.Children[0].Op != "ListScan" || s.Children[0].Emits == 0 {
		t.Fatalf("prefetch child: %+v", s.Children)
	}

	// Untraced: no node, no synthesis.
	un := &Counter{}
	pf2 := NewPrefetch(NewListScan(st, vs, pat, 1, 0, un), 4, stop)
	if TraceTree(pf2) != nil {
		t.Fatal("untraced prefetch synthesized a node")
	}
}

// TestTraceTreeIdempotent: assembling the tree twice (exec stamps build times
// first, the engine snapshots later) must not duplicate children.
func TestTraceTreeIdempotent(t *testing.T) {
	c := &Counter{}
	c.EnableTracing()
	_, join := traceFixture(t, c)
	Drain(join)
	a := TraceTree(join)
	b := TraceTree(join)
	if a != b {
		t.Fatal("TraceTree returned distinct roots")
	}
	if len(a.Children) != 2 {
		t.Fatalf("children duplicated: %d", len(a.Children))
	}
}
