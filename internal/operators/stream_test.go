package operators

import (
	"math"
	"math/rand"
	"testing"

	"specqp/internal/kg"
)

// pullCountingStream wraps a stream and bumps a shared counter on every Next,
// so a test can pin the exact input pull at which each join answer fires.
type pullCountingStream struct {
	Stream
	pulls *int
}

func (s pullCountingStream) Next() (Entry, bool) {
	*s.pulls++
	return s.Stream.Next()
}

// TestCornerBoundCertificateDeterministic is the hand-traced streaming
// contract: a store where the corner bound provably crosses the k-th emitted
// score mid-join, pinned down to the exact input pull at which each streamed
// answer fires. It guards against the degenerate implementation — "stream" =
// drain everything, then replay — which would fire every answer at the final
// pull count.
//
// The trace (HRJN with the larger-bound balancing heuristic, right side first
// on ties):
//
//	left : (a,1.00) (b,0.90) (c,0.20)
//	right: (a,0.95) (b,0.50) (c,0.45)
//
//	pull 1  left  (a,1.00)    bounds L=1.00 R=0.95 → left
//	pull 2  left  (b,0.90)    L=1.00 R=0.95 → left
//	pull 3  right (a,0.95)    joins a → queue (a,1.95);
//	                          threshold max(1.0+0.95, 0.9+0.95)=1.95 → EMIT a@1.95
//	pull 4  right (b,0.50)    joins b → queue (b,1.40)
//	pull 5  left  (c,0.20)    left is drained, its bound drops to 0
//	pull 6  right (c,0.45)    joins c → queue (c,0.65); right drained too, so
//	                          the threshold collapses to L.top+R.bound=1.0 < 1.40
//	                          → EMIT b@1.40 (bound crossed the 2nd score here)
//	pull 7  right exhausted
//	pull 8  left exhausted    both done, flush → EMIT c@0.65, certificate 0
func TestCornerBoundCertificateDeterministic(t *testing.T) {
	var pulls int
	l := pullCountingStream{joinStream([]kg.ID{1, 2, 3}, []float64{1.0, 0.9, 0.2}, 1, 0, 0), &pulls}
	r := pullCountingStream{joinStream([]kg.ID{1, 2, 3}, []float64{0.95, 0.5, 0.45}, 1, 0, 0), &pulls}
	rj := NewRankJoin(l, r, []int{0}, nil)

	type emission struct {
		id    kg.ID
		score float64
		pulls int
		cert  float64
	}
	var got []emission
	n := EmitK(rj, 10, func(e Entry) bool {
		got = append(got, emission{e.Binding[0], e.Score, pulls, rj.Certificate()})
		return true
	})
	want := []emission{
		{id: 1, score: 1.95, pulls: 3, cert: 1.95},
		{id: 2, score: 1.40, pulls: 6, cert: 1.0},
		{id: 3, score: 0.65, pulls: 8, cert: 0},
	}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("emitted %d answers, want %d (%+v)", len(got), len(want), got)
	}
	for i, w := range want {
		g := got[i]
		if g.id != w.id || math.Abs(g.score-w.score) > 1e-12 {
			t.Fatalf("emission %d: got id=%d score=%v, want id=%d score=%v", i, g.id, g.score, w.id, w.score)
		}
		if g.pulls != w.pulls {
			t.Fatalf("emission %d fired at pull %d, want pull %d — streaming is not incremental", i, g.pulls, w.pulls)
		}
		if math.Abs(g.cert-w.cert) > 1e-12 {
			t.Fatalf("emission %d certificate %v, want %v", i, g.cert, w.cert)
		}
		if g.score < g.cert-1e-12 {
			t.Fatalf("emission %d violates its certificate: score %v < bound %v", i, g.score, g.cert)
		}
	}
}

// TestCertificateHoldsOnRandomJoins asserts the streaming certificate on
// randomized joins: every emission's score dominates the corner bound that
// held at the moment it fired, and emissions stay sorted.
func TestCertificateHoldsOnRandomJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		mkSide := func(n int) []Entry {
			ids := make([]kg.ID, n)
			scores := make([]float64, n)
			v := 1.0
			for i := range ids {
				ids[i] = kg.ID(rng.Intn(12))
				v *= 0.6 + 0.4*rng.Float64()
				scores[i] = v
			}
			return dedupStream(joinStream(ids, scores, 1, 0, 0))
		}
		rj := NewRankJoin(
			&sliceStream{entries: mkSide(1 + rng.Intn(30))},
			&sliceStream{entries: mkSide(1 + rng.Intn(30))},
			[]int{0}, nil)
		prev := math.Inf(1)
		for {
			e, ok := rj.Next()
			if !ok {
				break
			}
			cert := rj.Certificate()
			if e.Score < cert-1e-9 {
				t.Fatalf("trial %d: emission %v fired under certificate %v", trial, e.Score, cert)
			}
			if e.Score > prev+1e-9 {
				t.Fatalf("trial %d: emissions out of order: %v after %v", trial, e.Score, prev)
			}
			prev = e.Score
		}
	}
}

// TestEmitKEarlyStop: a false-returning emitter stops the drain after the
// emitted prefix; DrainK (expressed on EmitK) still sees the full k.
func TestEmitKEarlyStop(t *testing.T) {
	mk := func() Stream {
		l := joinStream([]kg.ID{1, 2, 3}, []float64{1.0, 0.9, 0.2}, 1, 0, 0)
		r := joinStream([]kg.ID{1, 2, 3}, []float64{0.95, 0.5, 0.45}, 1, 0, 0)
		return NewRankJoin(l, r, []int{0}, nil)
	}
	full := DrainK(mk(), 10)
	if len(full) != 3 {
		t.Fatalf("full drain: %d answers", len(full))
	}
	var got []Entry
	n := EmitK(mk(), 10, func(e Entry) bool {
		got = append(got, e)
		return len(got) < 2
	})
	if n != 2 || len(got) != 2 {
		t.Fatalf("early stop emitted %d (returned %d), want 2", len(got), n)
	}
	for i := range got {
		if got[i].Score != full[i].Score || got[i].Binding[0] != full[i].Binding[0] {
			t.Fatalf("early-stopped prefix diverges at %d: %+v vs %+v", i, got[i], full[i])
		}
	}
}
