package datagen

import (
	"math"
	"sync"
	"testing"

	"specqp/internal/kg"
)

// Small configurations keep unit tests fast; the experiment harness uses the
// paper-sized defaults. Generated datasets are cached per seed — generation
// is deterministic, so sharing is safe (TestXKGDeterministic regenerates
// explicitly via smallXKGFresh).
var (
	cacheMu  sync.Mutex
	xkgCache = map[int64]*Dataset{}
	twCache  = map[int64]*Dataset{}
)

func smallXKGFresh(t *testing.T, seed int64) *Dataset {
	t.Helper()
	ds, err := XKG(XKGConfig{
		Seed:            seed,
		Entities:        4000,
		Groups:          4,
		TypesPerGroup:   12,
		Queries:         12,
		RelationTriples: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func smallXKG(t *testing.T, seed int64) *Dataset {
	t.Helper()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if ds, ok := xkgCache[seed]; ok {
		return ds
	}
	ds := smallXKGFresh(t, seed)
	xkgCache[seed] = ds
	return ds
}

func smallTwitterFresh(t *testing.T, seed int64) *Dataset {
	t.Helper()
	ds, err := Twitter(TwitterConfig{
		Seed:    seed,
		Tweets:  4000,
		Terms:   120,
		Queries: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func smallTwitter(t *testing.T, seed int64) *Dataset {
	t.Helper()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if ds, ok := twCache[seed]; ok {
		return ds
	}
	ds := smallTwitterFresh(t, seed)
	twCache[seed] = ds
	return ds
}

func TestXKGDeterministic(t *testing.T) {
	a := smallXKGFresh(t, 5)
	b := smallXKGFresh(t, 5)
	if a.Store.Len() != b.Store.Len() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.Store.Len(), b.Store.Len())
	}
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("same seed, different query counts")
	}
	for i := range a.Queries {
		if a.Store.QueryString(a.Queries[i].Query) != b.Store.QueryString(b.Queries[i].Query) {
			t.Fatalf("query %d differs between identical seeds", i)
		}
	}
	c := smallXKGFresh(t, 6)
	if a.Store.Len() == c.Store.Len() && a.Store.QueryString(a.Queries[0].Query) == c.Store.QueryString(c.Queries[0].Query) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestXKGWorkloadShape(t *testing.T) {
	ds := smallXKG(t, 5)
	byTP := ds.QueriesByPatternCount()
	for tp := range byTP {
		if tp < 2 || tp > 4 {
			t.Fatalf("query with %d patterns (want 2-4)", tp)
		}
	}
	// Every query must be non-empty (paper: queries "constructed so as to
	// have non-empty result sets").
	for i, qs := range ds.Queries {
		if ds.Store.Count(qs.Query) == 0 {
			t.Fatalf("query %d (%s) has no answers", i, qs.Name)
		}
		if qs.Name == "" {
			t.Fatalf("query %d unnamed", i)
		}
	}
}

func TestXKGRelaxationFanout(t *testing.T) {
	ds := smallXKG(t, 5)
	// The paper requires ≥10 relaxations per query triple pattern.
	for i, qs := range ds.Queries {
		for j, p := range qs.Query.Patterns {
			if got := len(ds.Rules.For(p)); got < 10 {
				t.Fatalf("query %d pattern %d: %d relaxations (<10)", i, j, got)
			}
		}
	}
}

func TestXKGScoresPowerLaw(t *testing.T) {
	ds := smallXKG(t, 5)
	// 80/20-ish: the top 30%% of triples should hold well over half the
	// score mass.
	var scores []float64
	for i := 0; i < ds.Store.Len(); i++ {
		scores = append(scores, ds.Store.Triple(int32(i)).Score)
	}
	sortDesc(scores)
	total, top := 0.0, 0.0
	for i, s := range scores {
		total += s
		if i < len(scores)*3/10 {
			top += s
		}
	}
	if top/total < 0.55 {
		t.Fatalf("score distribution not skewed enough: top 30%%%% holds %.0f%%%%", 100*top/total)
	}
}

func sortDesc(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestXKGRuleWeightsValid(t *testing.T) {
	ds := smallXKG(t, 5)
	for _, qs := range ds.Queries {
		for _, p := range qs.Query.Patterns {
			for _, r := range ds.Rules.For(p) {
				if r.Weight <= 0 || r.Weight > 1 {
					t.Fatalf("rule weight %v outside (0,1]", r.Weight)
				}
			}
			rules := ds.Rules.For(p)
			for i := 1; i < len(rules); i++ {
				if rules[i].Weight > rules[i-1].Weight {
					t.Fatal("rules not sorted by weight")
				}
			}
		}
	}
}

func TestTwitterDeterministic(t *testing.T) {
	a := smallTwitterFresh(t, 3)
	b := smallTwitterFresh(t, 3)
	if a.Store.Len() != b.Store.Len() || len(a.Queries) != len(b.Queries) {
		t.Fatal("same seed produced different datasets")
	}
}

func TestTwitterWorkloadShape(t *testing.T) {
	ds := smallTwitter(t, 3)
	for i, qs := range ds.Queries {
		np := len(qs.Query.Patterns)
		if np < 2 || np > 3 {
			t.Fatalf("query %d has %d patterns (want 2-3)", i, np)
		}
		if ds.Store.Count(qs.Query) == 0 {
			t.Fatalf("query %d empty", i)
		}
		// ≥5 relaxations per pattern (paper).
		for j, p := range qs.Query.Patterns {
			if got := len(ds.Rules.For(p)); got < 5 {
				t.Fatalf("query %d pattern %d: %d relaxations (<5)", i, j, got)
			}
		}
	}
}

func TestTwitterCooccurrenceWeightsMatchData(t *testing.T) {
	ds := smallTwitter(t, 3)
	st := ds.Store
	hasTag, _ := st.Dict().Lookup("hasTag")
	// Spot check: recompute w = #tweets(T1∧T2)/#tweets(T1) for the top rule
	// of the first query's first pattern.
	p := ds.Queries[0].Query.Patterns[0]
	rule, ok := ds.Rules.Top(p)
	if !ok {
		t.Fatal("no top rule")
	}
	t1 := p.O.ID
	t2 := rule.To.O.ID
	subjectsWith := func(term kg.ID) map[kg.ID]bool {
		out := map[kg.ID]bool{}
		for _, ti := range st.MatchList(kg.NewPattern(kg.Var("s"), kg.Const(hasTag), kg.Const(term))) {
			out[st.Triple(ti).S] = true
		}
		return out
	}
	s1 := subjectsWith(t1)
	s2 := subjectsWith(t2)
	both := 0
	for s := range s1 {
		if s2[s] {
			both++
		}
	}
	want := float64(both) / float64(len(s1))
	if want > 1 {
		want = 1
	}
	if math.Abs(rule.Weight-want) > 1e-9 {
		t.Fatalf("top rule weight %v, recomputed %v", rule.Weight, want)
	}
}

func TestTwitterScoresAreRetweetsPerTweet(t *testing.T) {
	ds := smallTwitter(t, 3)
	st := ds.Store
	// All triples of one tweet share the same score (the tweet's retweets).
	perSubject := map[kg.ID]float64{}
	for i := 0; i < st.Len(); i++ {
		tr := st.Triple(int32(i))
		if prev, ok := perSubject[tr.S]; ok && prev != tr.Score {
			t.Fatalf("tweet %d has triples with scores %v and %v", tr.S, prev, tr.Score)
		}
		perSubject[tr.S] = tr.Score
	}
}

func TestQueriesByPatternCount(t *testing.T) {
	ds := smallXKG(t, 5)
	byTP := ds.QueriesByPatternCount()
	total := 0
	for _, idxs := range byTP {
		total += len(idxs)
	}
	if total != len(ds.Queries) {
		t.Fatalf("grouping lost queries: %d vs %d", total, len(ds.Queries))
	}
}

func TestXKGTinyConfigStillFillsWorkload(t *testing.T) {
	// With 60 entities there are almost no plentiful type combinations; the
	// generator's spill valve must still deliver the requested number of
	// (scarce) queries rather than looping forever or under-filling.
	ds, err := XKG(XKGConfig{Seed: 1, Entities: 60, Groups: 2, TypesPerGroup: 12, Queries: 6, RelationTriples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Queries) != 6 {
		t.Fatalf("tiny config produced %d queries, want 6", len(ds.Queries))
	}
}
