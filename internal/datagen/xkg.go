package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"specqp/internal/kg"
	"specqp/internal/relax"
)

// XKGConfig parameterises the XKG-style generator. Zero values select
// paper-shaped defaults.
type XKGConfig struct {
	Seed          int64
	Entities      int // default 20000
	Groups        int // type groups, default 8
	TypesPerGroup int // default 14 (≥11 so every type has ≥10 relaxations)
	Queries       int // default 65
	// RelationTriples adds this many extra entity–predicate–entity triples
	// for realism and for the SPARQL examples. Default 20000.
	RelationTriples int
	// ScoreAlpha is the power-law exponent of triple scores. Default 1.1.
	ScoreAlpha float64
}

func (c *XKGConfig) defaults() {
	if c.Entities == 0 {
		c.Entities = 20000
	}
	if c.Groups == 0 {
		c.Groups = 8
	}
	if c.TypesPerGroup == 0 {
		c.TypesPerGroup = 14
	}
	if c.Queries == 0 {
		c.Queries = 65
	}
	if c.RelationTriples == 0 {
		c.RelationTriples = 20000
	}
	if c.ScoreAlpha == 0 {
		c.ScoreAlpha = 1.1
	}
}

// XKG generates the XKG-style dataset: a typed entity graph with a two-level
// type taxonomy per group, Zipf triple scores, varied-weight relaxation rules
// between related types (≥10 per type), and 65 star-join queries of 2–4
// patterns guaranteed non-empty.
func XKG(cfg XKGConfig) (*Dataset, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := kg.NewStore(nil)
	dict := st.Dict()
	typePred := dict.Encode("rdf:type")

	// Type vocabulary: Groups × TypesPerGroup leaf types plus one root per
	// group. Types in the same group are relaxation neighbours.
	type typeInfo struct {
		id    kg.ID
		group int
	}
	var types []typeInfo
	groupRoot := make([]kg.ID, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		groupRoot[g] = dict.Encode(fmt.Sprintf("type:g%d:root", g))
		for t := 0; t < cfg.TypesPerGroup; t++ {
			id := dict.Encode(fmt.Sprintf("type:g%d:t%d", g, t))
			types = append(types, typeInfo{id: id, group: g})
		}
	}

	// Entity typing: every entity belongs to one primary group and gets 2–4
	// leaf types from it (so star queries over one group have answers), and
	// with probability 0.3 one extra type from another group.
	entityTypes := make([][]kg.ID, cfg.Entities)
	rootOf := make([]kg.ID, cfg.Entities) // kg.NoID when the entity has no root typing
	var typeTriples int
	for e := 0; e < cfg.Entities; e++ {
		rootOf[e] = kg.NoID
		g := rng.Intn(cfg.Groups)
		k := 2 + rng.Intn(3)
		base := g * cfg.TypesPerGroup
		for _, off := range pickDistinctZipf(rng, cfg.TypesPerGroup, k, 0.8) {
			ti := types[base+off]
			entityTypes[e] = append(entityTypes[e], ti.id)
			typeTriples++
		}
		if rng.Float64() < 0.3 {
			g2 := (g + 1 + rng.Intn(cfg.Groups-1)) % cfg.Groups
			ti := types[g2*cfg.TypesPerGroup+rng.Intn(cfg.TypesPerGroup)]
			entityTypes[e] = append(entityTypes[e], ti.id)
			typeTriples++
		}
		// Half the entities also carry their group-root type, so root
		// relaxations have matches.
		if rng.Float64() < 0.5 {
			rootOf[e] = groupRoot[g]
			typeTriples++
		}
	}

	// Scores: the paper's XKG scores YAGO triples by the number of inlinks
	// of the subject entity — i.e. all of an entity's triples share one
	// popularity-driven score. Model that with per-entity Zipf "fame" plus
	// mild per-triple noise (textual triples in XKG carried their own
	// extraction counts, hence the noise).
	fame := zipfScores(rng, cfg.Entities, 100000, cfg.ScoreAlpha)
	score := func(e int) float64 {
		s := fame[e] * (0.8 + rng.Float64()*0.45)
		if s < 1 {
			s = 1
		}
		return s
	}
	_ = typeTriples
	for e := 0; e < cfg.Entities; e++ {
		ent := dict.Encode(fmt.Sprintf("entity:e%d", e))
		for _, ty := range entityTypes[e] {
			if err := st.Add(kg.Triple{S: ent, P: typePred, O: ty, Score: score(e)}); err != nil {
				return nil, err
			}
		}
		if rootOf[e] != kg.NoID {
			if err := st.Add(kg.Triple{S: ent, P: typePred, O: rootOf[e], Score: score(e)}); err != nil {
				return nil, err
			}
		}
	}

	// Relation triples for realism (not used by the star workload, but they
	// exercise the indexes and the SPARQL examples).
	preds := []kg.ID{
		dict.Encode("collaboratesWith"),
		dict.Encode("influencedBy"),
		dict.Encode("memberOf"),
	}
	relScores := zipfScores(rng, cfg.RelationTriples, 50000, cfg.ScoreAlpha)
	for i := 0; i < cfg.RelationTriples; i++ {
		s := dict.Encode(fmt.Sprintf("entity:e%d", rng.Intn(cfg.Entities)))
		o := dict.Encode(fmt.Sprintf("entity:e%d", rng.Intn(cfg.Entities)))
		p := preds[rng.Intn(len(preds))]
		if err := st.Add(kg.Triple{S: s, P: p, O: o, Score: relScores[i]}); err != nil {
			return nil, err
		}
	}
	st.Freeze()

	// Relaxation rules: for each leaf type, rules to every sibling in its
	// group and to the group root — ≥ TypesPerGroup ≥ 14 rules per type.
	// Rule strength is heterogeneous across types: each type draws a
	// "relaxability" ρ ∈ [0.35, 0.95] (how semantically close its best
	// substitutes are — mined rule sets show exactly this spread) and its
	// sibling weights are ρ·U[0.55,1.0]. Types with low ρ rarely benefit
	// from relaxation, which is what gives the speculative planner patterns
	// it can safely keep in the join group.
	rules := relax.NewRuleSet()
	for _, ti := range types {
		from := kg.NewPattern(kg.Var("s"), kg.Const(typePred), kg.Const(ti.id))
		rho := 0.35 + rng.Float64()*0.60
		base := ti.group * cfg.TypesPerGroup
		for t := 0; t < cfg.TypesPerGroup; t++ {
			sib := types[base+t]
			if sib.id == ti.id {
				continue
			}
			w := rho * (0.55 + rng.Float64()*0.45)
			if w > 0.95 {
				w = 0.95
			}
			err := rules.Add(relax.Rule{
				From:   from,
				To:     kg.NewPattern(kg.Var("s"), kg.Const(typePred), kg.Const(sib.id)),
				Weight: w,
			})
			if err != nil {
				return nil, err
			}
		}
		w := rho * 0.6
		err := rules.Add(relax.Rule{
			From:   from,
			To:     kg.NewPattern(kg.Var("s"), kg.Const(typePred), kg.Const(groupRoot[ti.group])),
			Weight: w,
		})
		if err != nil {
			return nil, err
		}
	}
	ds := &Dataset{Name: "xkg", Store: st, Rules: rules}

	// Queries: star joins ?s rdf:type T1 . ?s rdf:type T2 [...]. We anchor
	// each query on an entity so the original query is non-empty, and bias
	// toward type combinations with few common members so relaxations are
	// frequently required for top-k — matching Table 3, where nearly every
	// paper query needed some relaxation.
	// Distribute cfg.Queries across pattern counts in the paper's 20/25/20
	// proportions.
	counts := []int{2, 3, 4}
	perCount := []int{
		cfg.Queries * 20 / 65,
		cfg.Queries * 25 / 65,
		0,
	}
	perCount[2] = cfg.Queries - perCount[0] - perCount[1]
	qi := 0
	for ci, tp := range counts {
		// Stratify the workload: roughly half "scarce" queries (fewer than
		// ~k answers, forcing relaxations of most patterns — the regime
		// dominating the paper's Table 3) and half "plentiful" queries
		// (comfortably more than k answers, where speculation can prune).
		scarceWant := perCount[ci] / 3
		plentyWant := perCount[ci] - scarceWant
		// Larger stars are sparser; lower the "plentiful" bar with #TP, and
		// scale it with dataset density so small test configurations still
		// find plentiful combinations.
		plentyMin := map[int]int{2: 40, 3: 30, 4: 22}[tp]
		if scaled := plentyMin * cfg.Entities / 20000; scaled < plentyMin {
			plentyMin = scaled
		}
		if plentyMin < 13 {
			plentyMin = 13
		}
		scarce, plenty := 0, 0
		attempts := 0
		for scarce+plenty < perCount[ci] && attempts < 300000 {
			attempts++
			// Safety valve for small configurations: when half the attempt
			// budget is gone and the plentiful quota is starving, spill it
			// into the scarce quota so generation still terminates. The
			// paper-sized defaults never hit this.
			if attempts >= 150000 && plentyWant > plenty {
				scarceWant += plentyWant - plenty
				plentyWant = plenty
			}
			e := rng.Intn(cfg.Entities)
			tys := entityTypes[e]
			if len(tys) < tp {
				continue
			}
			sel := pickDistinct(rng, len(tys), tp)
			sort.Ints(sel)
			var pats []kg.Pattern
			seen := map[kg.ID]bool{}
			ok := true
			for _, s := range sel {
				ty := tys[s]
				if seen[ty] {
					ok = false
					break
				}
				seen[ty] = true
				pats = append(pats, kg.NewPattern(kg.Var("s"), kg.Const(typePred), kg.Const(ty)))
			}
			if !ok {
				continue
			}
			q := kg.NewQuery(pats...)
			n := st.Count(q)
			switch {
			case n >= 1 && n < 12 && scarce < scarceWant:
				scarce++
			case n >= plentyMin && plenty < plentyWant:
				plenty++
			default:
				continue
			}
			ds.Queries = append(ds.Queries, QuerySpec{
				Name:  queryName("xkg", qi, tp),
				Query: q,
			})
			qi++
		}
		if scarce+plenty < perCount[ci] {
			return nil, fmt.Errorf("datagen: only generated %d/%d %d-pattern XKG queries (scarce=%d plenty=%d)",
				scarce+plenty, perCount[ci], tp, scarce, plenty)
		}
	}
	return ds, nil
}

// pickDistinctZipf samples k distinct indexes in [0,n) biased toward low
// indexes with exponent alpha.
func pickDistinctZipf(rng *rand.Rand, n, k int, alpha float64) []int {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := sampleZipfIndex(rng, n, alpha)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
