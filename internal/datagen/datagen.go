// Package datagen synthesises the two evaluation datasets of the paper.
//
// The real datasets (XKG = YAGO2s + OpenIE textual triples, 105M triples;
// a 30-day Twitter hashtag stream, 18M triples) are not redistributable, so
// this package generates structurally faithful substitutes: power-law triple
// scores (the 80/20 property the paper's own estimator assumes), rich
// relaxation fan-out (≥10 rules/pattern for XKG-style, ≥5 for Twitter-style
// with co-occurrence weights), and query workloads with the paper's shape
// (65 queries of 2–4 patterns; 50 queries of 2–3 patterns). See DESIGN.md §5.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"specqp/internal/kg"
	"specqp/internal/relax"
)

// Dataset bundles a generated store, its relaxation rules and query workload.
type Dataset struct {
	Name    string
	Store   *kg.Store
	Rules   *relax.RuleSet
	Queries []QuerySpec
}

// QuerySpec is one workload query with a stable name for reporting.
type QuerySpec struct {
	Name  string
	Query kg.Query
}

// QueriesByPatternCount groups workload query indexes by pattern count.
func (d *Dataset) QueriesByPatternCount() map[int][]int {
	out := make(map[int][]int)
	for i, qs := range d.Queries {
		n := len(qs.Query.Patterns)
		out[n] = append(out[n], i)
	}
	return out
}

// zipfScores returns n scores following a Zipf-like power law: the i-th
// largest is roughly max/(i+1)^alpha, with multiplicative noise. Scores are
// positive and in descending order of magnitude before shuffling.
func zipfScores(rng *rand.Rand, n int, max, alpha float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		base := max / math.Pow(float64(i+1), alpha)
		noise := 0.75 + rng.Float64()*0.5
		s := base * noise
		if s < 1 {
			s = 1
		}
		out[i] = s
	}
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// sampleZipfIndex draws an index in [0,n) with P(i) ∝ 1/(i+1)^alpha using
// rejection sampling (cheap and deterministic with the provided rng).
func sampleZipfIndex(rng *rand.Rand, n int, alpha float64) int {
	for {
		i := rng.Intn(n)
		accept := 1 / math.Pow(float64(i+1), alpha)
		if rng.Float64() < accept {
			return i
		}
	}
}

// pickDistinct samples k distinct ints in [0,n) using the rng.
func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func queryName(prefix string, i, tp int) string {
	return fmt.Sprintf("%s-q%02d-%dtp", prefix, i, tp)
}
