package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"specqp/internal/kg"
	"specqp/internal/relax"
)

// TwitterConfig parameterises the Twitter-style generator. Zero values select
// paper-shaped defaults.
type TwitterConfig struct {
	Seed   int64
	Tweets int // default 15000
	Terms  int // default 400
	// TermsPerTweet bounds the number of hashtag/term triples per tweet.
	MinTermsPerTweet int // default 3
	MaxTermsPerTweet int // default 8
	Queries          int // default 50
	// ScoreAlpha is the power-law exponent of retweet counts. Default 1.0.
	ScoreAlpha float64
	// TopicCount clusters terms into topics so co-occurrence (and therefore
	// relaxation weights) has structure. Default 25.
	TopicCount int
}

func (c *TwitterConfig) defaults() {
	if c.Tweets == 0 {
		c.Tweets = 15000
	}
	if c.Terms == 0 {
		c.Terms = 400
	}
	if c.MinTermsPerTweet == 0 {
		c.MinTermsPerTweet = 3
	}
	if c.MaxTermsPerTweet == 0 {
		c.MaxTermsPerTweet = 8
	}
	if c.Queries == 0 {
		c.Queries = 50
	}
	if c.ScoreAlpha == 0 {
		c.ScoreAlpha = 1.0
	}
	if c.TopicCount == 0 {
		c.TopicCount = 25
	}
}

// Twitter generates the Twitter-style dataset: 〈tweetID hasTag term〉 triples
// scored by the tweet's retweet count, relaxation rules mined from actual
// term co-occurrence (w = #tweets(T1∧T2)/#tweets(T1), exactly the paper's
// formula), and 50 conjunctive term queries of 2–3 patterns.
func Twitter(cfg TwitterConfig) (*Dataset, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := kg.NewStore(nil)
	dict := st.Dict()
	hasTag := dict.Encode("hasTag")

	// Terms clustered into topics; tweets draw most terms from one topic.
	termIDs := make([]kg.ID, cfg.Terms)
	termTopic := make([]int, cfg.Terms)
	for t := 0; t < cfg.Terms; t++ {
		termIDs[t] = dict.Encode(fmt.Sprintf("term:%d", t))
		termTopic[t] = t % cfg.TopicCount
	}
	topicTerms := make([][]int, cfg.TopicCount)
	for t := 0; t < cfg.Terms; t++ {
		topicTerms[termTopic[t]] = append(topicTerms[termTopic[t]], t)
	}

	retweets := zipfScores(rng, cfg.Tweets, 50000, cfg.ScoreAlpha)
	tweetTerms := make([][]int, cfg.Tweets)
	for tw := 0; tw < cfg.Tweets; tw++ {
		topic := rng.Intn(cfg.TopicCount)
		n := cfg.MinTermsPerTweet + rng.Intn(cfg.MaxTermsPerTweet-cfg.MinTermsPerTweet+1)
		terms := map[int]bool{}
		for len(terms) < n {
			var t int
			if rng.Float64() < 0.7 {
				tt := topicTerms[topic]
				t = tt[sampleZipfIndex(rng, len(tt), 0.9)]
			} else {
				t = sampleZipfIndex(rng, cfg.Terms, 0.9)
			}
			terms[t] = true
		}
		tid := dict.Encode(fmt.Sprintf("tweet:%d", tw))
		// Iterate the term set in sorted order: map iteration order is
		// random per process, and triple insertion order is the score-sort
		// tiebreak, so ranging the map directly made match-list order — and
		// with it top-k pull counts and the mem-objects metric — vary from
		// run to run for the same seed.
		for t := range terms {
			tweetTerms[tw] = append(tweetTerms[tw], t)
		}
		sort.Ints(tweetTerms[tw])
		for _, t := range tweetTerms[tw] {
			if err := st.Add(kg.Triple{S: tid, P: hasTag, O: termIDs[t], Score: retweets[tw]}); err != nil {
				return nil, err
			}
		}
	}
	st.Freeze()

	// Mine co-occurrence relaxations from the generated stream itself.
	miner := relax.CooccurrenceMiner{Pred: hasTag, MaxRules: 12, MinWeight: 0.02}
	rules, err := miner.Mine(st)
	if err != nil {
		return nil, err
	}

	ds := &Dataset{Name: "twitter", Store: st, Rules: rules}

	// Term frequency for query construction.
	termFreq := make([]int, cfg.Terms)
	for _, ts := range tweetTerms {
		for _, t := range ts {
			termFreq[t]++
		}
	}

	// Queries: conjunctions of 2–3 co-occurring terms anchored on a tweet,
	// biased toward scarce conjunctions (the paper observes most Twitter
	// queries need all patterns relaxed).
	// Distribute cfg.Queries across pattern counts in the paper's 15/35
	// proportions.
	counts := []int{2, 3}
	perCount := []int{cfg.Queries * 15 / 50, 0}
	perCount[1] = cfg.Queries - perCount[0]
	qi := 0
	for ci, tp := range counts {
		made := 0
		attempts := 0
		for made < perCount[ci] && attempts < 200000 {
			attempts++
			tw := rng.Intn(cfg.Tweets)
			if len(tweetTerms[tw]) < tp {
				continue
			}
			sel := pickDistinct(rng, len(tweetTerms[tw]), tp)
			var pats []kg.Pattern
			minRules := len(ds.Rules.For(kg.NewPattern(kg.Var("s"), kg.Const(hasTag), kg.Const(termIDs[tweetTerms[tw][sel[0]]]))))
			for _, s := range sel {
				term := termIDs[tweetTerms[tw][s]]
				p := kg.NewPattern(kg.Var("s"), kg.Const(hasTag), kg.Const(term))
				if n := len(ds.Rules.For(p)); n < minRules {
					minRules = n
				}
				pats = append(pats, p)
			}
			// The paper guarantees ≥5 relaxations per pattern.
			if minRules < 5 {
				continue
			}
			q := kg.NewQuery(pats...)
			n := st.Count(q)
			if n == 0 {
				continue
			}
			if n >= 20 && rng.Float64() < 0.85 {
				continue
			}
			ds.Queries = append(ds.Queries, QuerySpec{
				Name:  queryName("twitter", qi, tp),
				Query: q,
			})
			qi++
			made++
		}
		if made < perCount[ci] {
			return nil, fmt.Errorf("datagen: only generated %d/%d %d-pattern Twitter queries", made, perCount[ci], tp)
		}
	}
	return ds, nil
}
