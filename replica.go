package specqp

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"specqp/internal/kg"
	"specqp/internal/wal"
)

// This file is the read-replica side of WAL log shipping: a Replica is the
// store a follower applies shipped deliveries to, behind the exact replay
// discipline crash recovery uses (see loadDurableState). A snapshot delivery
// rebuilds the whole store from the v2 binary format — the restart rule: the
// checkpoint is the only self-contained state, because the opening
// checkpoint's base triples exist in no WAL record — and record deliveries
// replay through the same by-kind paths: inserts re-encode term strings
// (subject-hash routing re-derives shard placement under any shard count) and
// tombstones delete by unconditionally encoded IDs, never DeleteSPO, whose
// unknown-term short-circuit would break the ops↔seq lockstep.
//
// A Replica is also a server.Backend (asserted where the server is wired, to
// keep this package free of internal/server): queries serve from the last
// applied state, mutations fail fast with ErrWedged — the same typed error a
// wedged primary surfaces, so the serving layer's read-only discipline (503
// mutations, "read-only" health) covers followers with zero new code paths.

// ErrNotBootstrapped is returned by Replica queries before the first snapshot
// installs: a follower has no state at all until its bootstrap delivery.
var ErrNotBootstrapped = fmt.Errorf("specqp: replica not yet bootstrapped (no snapshot installed)")

// Replica is a read-only engine fed by WAL log shipping. InstallSnapshot and
// Apply implement the follower's applier surface (repl.Applier, structurally);
// everything else is the query surface the HTTP server drives. Queries are
// safe concurrently with Apply — they run against live engine state exactly
// like queries on a primary race live inserts — and concurrently with
// InstallSnapshot, which builds the new engine aside and swaps one pointer:
// an in-flight query finishes on the state it started with.
type Replica struct {
	rules *RuleSet
	opts  Options

	// mu serialises the applier side (InstallSnapshot/Apply) — the follower
	// drives it from one loop, but the lock makes the contract local.
	mu        sync.Mutex
	loadRules func(*kg.Dict) (*RuleSet, error)
	eng       atomic.Pointer[Engine]
	applied   atomic.Uint64
}

// NewReplica returns an empty replica that will serve queries with the given
// rules and options once bootstrapped. Options.Shards selects the follower's
// own storage layout — it need not match the primary's, because records ship
// term strings and snapshots route by subject hash, so answers are
// bit-identical at every shard count. Options.WALDir must be empty: a replica
// owns no log; its durability is the primary's.
func NewReplica(rules *RuleSet, opts Options) *Replica {
	if opts.WALDir != "" {
		panic("specqp: a Replica has no WAL of its own; Options.WALDir must be empty")
	}
	if rules == nil {
		rules = NewRuleSet()
	}
	return &Replica{rules: rules, opts: opts}
}

// SetRulesLoader installs a loader that re-encodes relaxation rules against
// each installed snapshot's dictionary. Rule patterns hold dictionary IDs, and
// every snapshot install rebuilds the dictionary from the primary's term
// table — so rules sourced outside that table (a local rules TSV on a
// follower) must be re-encoded per install; a RuleSet passed to NewReplica is
// only valid when its IDs are the primary's own (it was built against a
// dictionary the snapshots reproduce). Call before the follower starts; a
// loader error fails the install, which the follower retries.
func (r *Replica) SetRulesLoader(load func(d *kg.Dict) (*RuleSet, error)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.loadRules = load
}

// InstallSnapshot replaces the replica's entire state with the snapshot (v2
// binary format) covering WAL position seq. The build mirrors recovery: a
// fresh store in the configured layout (ReadBinaryInto requires a fresh
// dictionary — the snapshot's dense term table reproduces the primary's IDs
// exactly), loaded and frozen aside, then swapped in atomically.
func (r *Replica) InstallSnapshot(seq uint64, src io.Reader) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	shards := r.opts.Shards
	if shards < 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	type stage interface {
		kg.LiveGraph
		Add(kg.Triple) error
	}
	var g stage
	if shards > 1 {
		g = kg.NewShardedStore(nil, shards)
	} else {
		g = kg.NewStore(nil)
	}
	if err := kg.ReadBinaryInto(src, g.Dict(), g.Add); err != nil {
		return fmt.Errorf("specqp: installing replica snapshot: %w", err)
	}
	rules := r.rules
	if r.loadRules != nil {
		rs, err := r.loadRules(g.Dict())
		if err != nil {
			return fmt.Errorf("specqp: encoding replica rules against snapshot dictionary: %w", err)
		}
		rules = rs
	}
	r.eng.Store(NewEngineOver(g, rules, r.opts)) // NewEngineOver freezes
	r.applied.Store(seq)
	return nil
}

// Apply replays one shipped WAL record against the live engine — the
// post-freeze half of recovery's replay-by-kind, verbatim: the caller (the
// follower) guarantees rec.Seq == AppliedSeq()+1.
func (r *Replica) Apply(rec wal.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	eng := r.eng.Load()
	if eng == nil {
		return ErrNotBootstrapped
	}
	switch rec.Kind {
	case wal.KindInsert:
		if err := eng.InsertSPO(rec.S, rec.P, rec.O, rec.Score); err != nil {
			return fmt.Errorf("specqp: applying shipped record %d: %w", rec.Seq, err)
		}
	case wal.KindTombstone:
		// Delete by encoded ID, not DeleteSPO: the short-circuit on unknown
		// terms would desynchronise the applied position from the sequence
		// number this record consumed (see loadDurableState).
		d := eng.graph.Dict()
		if _, err := eng.Delete(d.Encode(rec.S), d.Encode(rec.P), d.Encode(rec.O)); err != nil {
			return fmt.Errorf("specqp: applying shipped tombstone %d: %w", rec.Seq, err)
		}
	default:
		return fmt.Errorf("specqp: unsupported shipped record kind %d at seq %d", rec.Kind, rec.Seq)
	}
	r.applied.Store(rec.Seq)
	return nil
}

// AppliedSeq returns the WAL position of the replica's state: the snapshot
// seq of the last install plus every record applied since. It is the
// follower's pull cursor and the replication-lag numerator.
func (r *Replica) AppliedSeq() uint64 { return r.applied.Load() }

// Engine returns the current engine (nil before bootstrap) — the seam the
// oracle harnesses compare through.
func (r *Replica) Engine() *Engine { return r.eng.Load() }

// engine returns the current engine or the bootstrap error.
func (r *Replica) engine() (*Engine, error) {
	if eng := r.eng.Load(); eng != nil {
		return eng, nil
	}
	return nil, ErrNotBootstrapped
}

// ParseSPARQL parses a SPARQL-subset query against the replica's dictionary.
func (r *Replica) ParseSPARQL(src string) (Query, error) {
	eng, err := r.engine()
	if err != nil {
		return Query{}, err
	}
	return eng.ParseSPARQL(src)
}

// QueryContext executes q against the last applied state.
func (r *Replica) QueryContext(ctx context.Context, q Query, k int, mode Mode) (Result, error) {
	eng, err := r.engine()
	if err != nil {
		return Result{}, err
	}
	return eng.QueryContext(ctx, q, k, mode)
}

// QueryTraced executes q traced against the last applied state.
func (r *Replica) QueryTraced(ctx context.Context, q Query, k int, mode Mode) (Result, error) {
	eng, err := r.engine()
	if err != nil {
		return Result{}, err
	}
	return eng.QueryTraced(ctx, q, k, mode)
}

// Stats reports the replica engine's internals; the zero snapshot before
// bootstrap (there is no state to describe yet).
func (r *Replica) Stats() EngineStats {
	eng, err := r.engine()
	if err != nil {
		return EngineStats{}
	}
	return eng.Stats()
}

// QueryStream streams answers from the last applied state.
func (r *Replica) QueryStream(ctx context.Context, q Query, k int, mode Mode, emit AnswerEmitter) (Result, error) {
	eng, err := r.engine()
	if err != nil {
		return Result{}, err
	}
	return eng.QueryStream(ctx, q, k, mode, emit)
}

// QueryBatch executes a query batch against the last applied state.
func (r *Replica) QueryBatch(ctx context.Context, queries []Query, k int, mode Mode) ([]BatchResult, error) {
	eng, err := r.engine()
	if err != nil {
		return nil, err
	}
	return eng.QueryBatch(ctx, queries, k, mode)
}

// QueryBatchStream streams a query batch from the last applied state.
func (r *Replica) QueryBatchStream(ctx context.Context, queries []Query, k int, mode Mode, emit func(int, Answer) bool) ([]BatchResult, error) {
	eng, err := r.engine()
	if err != nil {
		return nil, err
	}
	return eng.QueryBatchStream(ctx, queries, k, mode, emit)
}

// DecodeAnswer renders an answer's bindings against the replica's dictionary.
// Before bootstrap there is no dictionary; the empty map mirrors an answer
// with no bindings.
func (r *Replica) DecodeAnswer(q Query, a Answer) map[string]string {
	eng := r.eng.Load()
	if eng == nil {
		return map[string]string{}
	}
	return eng.DecodeAnswer(q, a)
}

// readOnlyErr is the mutation refusal: it matches errors.Is(err, ErrWedged),
// so the serving layer's wedged-log discipline (fast 503, read-only health)
// covers replicas without a second code path.
func readOnlyErr(op string) error {
	return fmt.Errorf("specqp: %s on read-only replica: %w", op, ErrWedged)
}

// InsertSPO fails: replicas are read-only; write to the primary.
func (r *Replica) InsertSPO(s, p, o string, score float64) error { return readOnlyErr("insert") }

// DeleteSPO fails: replicas are read-only; write to the primary.
func (r *Replica) DeleteSPO(s, p, o string) (int, error) { return 0, readOnlyErr("delete") }

// UpdateSPO fails: replicas are read-only; write to the primary.
func (r *Replica) UpdateSPO(s, p, o string, score float64) error { return readOnlyErr("update") }

// Sync is a no-op: a replica has nothing of its own to make durable.
func (r *Replica) Sync() error { return nil }

// Checkpoint is a no-op: the primary owns the checkpoint cadence.
func (r *Replica) Checkpoint() error { return nil }

// Wedged reports true always: a replica is permanently read-only, which is
// exactly the state the serving layer renders as "read-only" and answers
// mutations with 503 for.
func (r *Replica) Wedged() bool { return true }

// WALFeed exposes a durable engine's log and checkpoints as a shipping feed
// for a replication primary (see internal/repl). It returns nil on
// non-durable engines — there is no log to ship.
func (e *Engine) WALFeed() *wal.Feed {
	if e.wal == nil {
		return nil
	}
	return wal.NewFeed(e.wal.fs, e.wal.log)
}
