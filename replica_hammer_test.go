package specqp

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"specqp/internal/repl"
	"specqp/internal/wal"
)

// TestReplicaFollowerHammer races the whole replication stack under -race:
// two writers mutating the primary, a checkpointer truncating the log under
// the follower, a disconnector tearing the TCP link (every redial is a
// positional resume), the follower's Run loop tailing through all of it, and
// reader goroutines on the replica sampling the applied position — which must
// never move backwards — and running query batches against whatever state is
// live. At quiescence the replica must have caught the primary's WAL tip and
// be bit-identical to the live primary: same survivor triples, same answers
// in all four modes.
func TestReplicaFollowerHammer(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 9990)
	base := len(triples) / 2
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules, Options{
		Shards:          2,
		SyncPolicy:      SyncAlways,
		WALSegmentSize:  1 << 11,
		CheckpointBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	feed := eng.WALFeed()
	prim := repl.NewPrimary(feed, repl.PrimaryOptions{PollWait: -1, MaxBatchBytes: 512})
	ln := mustListen(t)
	go prim.Serve(ln)
	defer prim.Close()

	client := repl.NewNetClient(ln.Addr().String(), repl.NetClientOptions{})
	defer client.Close()
	rep := NewReplica(rules, Options{Shards: 3})
	f := repl.NewFollower(client, rep, repl.FollowerOptions{
		RetryDelay: time.Millisecond,
		IdleDelay:  time.Millisecond,
	})
	stop := make(chan struct{})
	var tail sync.WaitGroup
	tail.Add(1)
	go func() { defer tail.Done(); f.Run(stop) }()

	// Writers: mixed inserts, deletes (absent keys still consume a sequence
	// number) and updates (two positions each), all within the fixture's term
	// set so every dictionary assigns identical IDs.
	const writers = 2
	const opsPerWriter = 120
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(9991 + int64(w)))
			randTriple := func() Triple {
				return Triple{
					S:     ID(rng.Intn(8)),
					P:     ID(8 + rng.Intn(3)),
					O:     ID(11 + rng.Intn(5)),
					Score: float64(1 + rng.Intn(25)),
				}
			}
			for i := 0; i < opsPerWriter; i++ {
				tr := randTriple()
				var err error
				switch r := rng.Intn(10); {
				case r < 6:
					err = eng.Insert(tr)
				case r < 8:
					_, err = eng.Delete(tr.S, tr.P, tr.O)
				default:
					err = eng.Update(tr)
				}
				if err != nil {
					t.Errorf("writer %d op %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}

	// Checkpointer: forced checkpoints truncate shipped positions while the
	// follower lags, forcing snapshot-reinstall fallbacks mid-hammer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			time.Sleep(3 * time.Millisecond)
			if err := eng.Checkpoint(); err != nil {
				t.Errorf("checkpoint %d: %v", i, err)
				return
			}
		}
	}()

	// Disconnector: tears the TCP connection out from under in-flight round
	// trips; every subsequent pull redials and resumes from the follower's
	// position.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			time.Sleep(2 * time.Millisecond)
			client.Close()
		}
	}()

	// Readers: the applied position must be monotone under concurrent installs
	// and applies, and queries must either answer from a consistent engine or
	// report the replica as not yet bootstrapped — nothing in between.
	readerStop := make(chan struct{})
	var readers sync.WaitGroup
	for rdr := 0; rdr < 2; rdr++ {
		readers.Add(1)
		go func(rdr int) {
			defer readers.Done()
			var last uint64
			for {
				select {
				case <-readerStop:
					return
				default:
				}
				cur := rep.AppliedSeq()
				if cur < last {
					t.Errorf("reader %d: applied position rewound %d -> %d", rdr, last, cur)
					return
				}
				last = cur
				if _, err := rep.QueryBatch(context.Background(), queries[:2], 5, ModeSpecQP); err != nil &&
					!errors.Is(err, ErrNotBootstrapped) {
					t.Errorf("reader %d: query batch: %v", rdr, err)
					return
				}
			}
		}(rdr)
	}

	wg.Wait()
	if t.Failed() {
		close(readerStop)
		close(stop)
		t.Fatal("writer-side goroutine failed; skipping convergence wait")
	}
	// Quiescence: writers are done, so the WAL tip is final; the follower must
	// reach it.
	target := feed.LastSeq()
	deadline := time.Now().Add(20 * time.Second)
	for rep.AppliedSeq() < target {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d, primary tip %d", rep.AppliedSeq(), target)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(readerStop)
	readers.Wait()
	close(stop)
	tail.Wait()

	assertSameTriples(t, "hammer tip state", rep.Engine().Graph(), eng.Graph())
	assertReplicaOracle(t, "hammer tip", rep, eng, queries)
}
