package specqp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"specqp/internal/kg"
)

// This file is the sharded engine's correctness contract: across shard
// counts {1, 2, 3, 7, 16} and all three execution modes, answers must be
// bit-identical to the unsharded engine, and — for the exhaustive modes —
// consistent with the Evaluate/EvaluateWeighted oracle. Spec-QP's guarantee
// is exactly a rewriting-equivalence property (speculative plans must return
// what exhaustive evaluation returns), which is easy to break silently under
// parallel execution; these tests pin it.

var oracleShardCounts = []int{1, 2, 3, 7, 16}

// randomEngineFixture builds a randomized scored store (score ties and
// duplicate triples included), a co-occurrence-style rule set over its
// object constants, and a batch of 2–3 pattern join queries.
func randomEngineFixture(t testing.TB, seed int64) (*Store, *RuleSet, []Query) {
	t.Helper()
	dict, triples, rules, queries := randomLiveFixture(t, seed)
	st := kg.NewStore(dict)
	for _, tr := range triples {
		if err := st.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	return st, rules, queries
}

// randomLiveFixture is randomEngineFixture with the triple sequence exposed
// as a stream instead of pre-loaded into a store, so live-ingest tests can
// replay arbitrary prefixes through Insert and rebuild flat oracles at any
// interleaving point. The rng consumption order matches the original
// fixture exactly, keeping every seeded test's data stable.
func randomLiveFixture(t testing.TB, seed int64) (*kg.Dict, []Triple, *RuleSet, []Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dict := kg.NewDict()
	for dict.Len() < 16 {
		dict.Encode(fmt.Sprintf("t%d", dict.Len()))
	}
	n := 150 + rng.Intn(150)
	triples := make([]Triple, 0, n+n/4)
	for i := 0; i < n; i++ {
		tr := Triple{
			S:     ID(rng.Intn(8)),
			P:     ID(8 + rng.Intn(3)),
			O:     ID(11 + rng.Intn(5)),
			Score: float64(1 + rng.Intn(25)), // small range forces score ties
		}
		triples = append(triples, tr)
		if rng.Intn(4) == 0 {
			tr.Score = float64(1 + rng.Intn(25))
			triples = append(triples, tr)
		}
	}

	rules := NewRuleSet()
	for p := 8; p < 11; p++ {
		for o := 11; o < 16; o++ {
			if rng.Intn(3) != 0 {
				continue
			}
			to := 11 + rng.Intn(5)
			if to == o {
				to = 11 + (o-11+1)%5
			}
			r := Rule{
				From:   NewPattern(Var("s"), Const(ID(p)), Const(ID(o))),
				To:     NewPattern(Var("s"), Const(ID(p)), Const(ID(to))),
				Weight: 0.3 + rng.Float64()*0.6,
			}
			if err := rules.Add(r); err != nil {
				t.Fatal(err)
			}
		}
	}

	var queries []Query
	for qi := 0; qi < 6; qi++ {
		names := []string{"x", "y", "z", "w"}
		np := 2 + rng.Intn(2)
		var ps []Pattern
		for i := 0; i < np; i++ {
			s := Var(names[i])
			if rng.Intn(4) == 0 {
				s = Var(names[0])
			}
			p := Const(ID(8 + rng.Intn(3)))
			o := Term(Var(names[i+1]))
			if rng.Intn(2) == 0 {
				o = Const(ID(11 + rng.Intn(5)))
			}
			ps = append(ps, NewPattern(s, p, o))
		}
		queries = append(queries, NewQuery(ps...))
	}
	return dict, triples, rules, queries
}

// sameAnswers asserts two answer lists are bit-identical: same length, same
// order, equal bindings, exactly equal scores and provenance masks.
func sameAnswers(t *testing.T, label string, got, want []Answer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Binding.Compare(w.Binding) != 0 {
			t.Fatalf("%s: rank %d binding %v, want %v", label, i, g.Binding, w.Binding)
		}
		if g.Score != w.Score {
			t.Fatalf("%s: rank %d score %v, want %v (diff %g)", label, i, g.Score, w.Score, g.Score-w.Score)
		}
		if g.Relaxed != w.Relaxed {
			t.Fatalf("%s: rank %d relaxed mask %b, want %b", label, i, g.Relaxed, w.Relaxed)
		}
	}
}

// TestShardedEnginesBitIdentical is the oracle property test of the sharded
// engine: for randomized stores, every shard count and every mode returns
// exactly the unsharded engine's answers — order, scores, relaxation
// provenance and the Spec-QP plan's relaxation decisions included.
func TestShardedEnginesBitIdentical(t *testing.T) {
	for trial := int64(0); trial < 5; trial++ {
		st, rules, queries := randomEngineFixture(t, 3100+trial)
		base := NewEngineWith(st, rules, Options{Shards: 1})
		for _, shards := range oracleShardCounts[1:] {
			eng := NewEngineWith(st, rules, Options{Shards: shards})
			if g, ok := eng.Graph().(*ShardedStore); !ok || g.NumShards() != shards {
				t.Fatalf("shards=%d: engine graph is %T", shards, eng.Graph())
			}
			for qi, q := range queries {
				for _, mode := range []Mode{ModeSpecQP, ModeTriniT, ModeNaive} {
					k := 1 + int(trial)%9 + qi
					want, err := base.Query(q, k, mode)
					if err != nil {
						t.Fatal(err)
					}
					got, err := eng.Query(q, k, mode)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("trial %d shards=%d query %d mode %v k=%d", trial, shards, qi, mode, k)
					sameAnswers(t, label, got.Answers, want.Answers)
					if mode == ModeSpecQP && got.Plan.RelaxMask() != want.Plan.RelaxMask() {
						t.Fatalf("%s: plan relax mask %b, want %b", label, got.Plan.RelaxMask(), want.Plan.RelaxMask())
					}
				}
			}
		}
	}
}

// TestShardedEnginesMatchEvaluateOracle checks the exhaustive modes against
// the ground-truth evaluator on the *flat* store: TriniT (no rules) and
// Naive must return the oracle's top-k exactly, at every shard count. With
// rules, Naive is compared against the weighted-enumeration oracle implied
// by its own unsharded run — already covered above — so this test drops the
// rules to make Evaluate the direct oracle.
func TestShardedEnginesMatchEvaluateOracle(t *testing.T) {
	for trial := int64(0); trial < 4; trial++ {
		st, _, queries := randomEngineFixture(t, 5200+trial)
		empty := NewRuleSet()
		for _, shards := range oracleShardCounts {
			eng := NewEngineWith(st, empty, Options{Shards: shards})
			for qi, q := range queries {
				oracle := st.Evaluate(q)
				const k = 10
				for _, mode := range []Mode{ModeSpecQP, ModeTriniT, ModeNaive} {
					res, err := eng.Query(q, k, mode)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("trial %d shards=%d query %d mode %v", trial, shards, qi, mode)
					wantLen := k
					if len(oracle) < k {
						wantLen = len(oracle)
					}
					if len(res.Answers) != wantLen {
						t.Fatalf("%s: %d answers, oracle has %d (want %d)", label, len(res.Answers), len(oracle), wantLen)
					}
					for i, a := range res.Answers {
						// Scores at each rank must match the oracle exactly;
						// the binding must be an oracle answer with that
						// score (equal-score ranks may permute bindings
						// between oracle sort order and stream emission
						// order, both valid top-k).
						if math.Abs(a.Score-oracle[i].Score) > 1e-9 {
							t.Fatalf("%s: rank %d score %v, oracle %v", label, i, a.Score, oracle[i].Score)
						}
						found := false
						for _, oa := range oracle {
							if oa.Binding.Compare(a.Binding) == 0 {
								if math.Abs(oa.Score-a.Score) > 1e-9 {
									t.Fatalf("%s: binding %v score %v, oracle %v", label, a.Binding, a.Score, oa.Score)
								}
								found = true
								break
							}
						}
						if !found {
							t.Fatalf("%s: rank %d binding %v not in oracle", label, i, a.Binding)
						}
					}
				}
			}
		}
	}
}

// TestNewEngineOverShardedStore pins the copy-free construction path: a
// caller-built ShardedStore handed to NewEngineOver answers bit-identically
// to the flat engine over the same triple sequence, with no flat Store ever
// materialised (Engine.Store is nil).
func TestNewEngineOverShardedStore(t *testing.T) {
	st, rules, queries := randomEngineFixture(t, 880)
	// The fixture's rule constants were interned in st's dict; share it so
	// the IDs line up (kg.NewShardedStore takes a dict; the public
	// NewShardedStore wraps it with a fresh one).
	ss := kg.NewShardedStore(st.Dict(), 5)
	for i := 0; i < st.Len(); i++ {
		if err := ss.Add(st.Triple(int32(i))); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngineOver(ss, rules, Options{})
	if eng.Store() != nil {
		t.Fatal("engine over a sharded graph should have no flat store")
	}
	if !eng.Graph().Frozen() {
		t.Fatal("NewEngineOver did not freeze the graph")
	}
	// The dictionary-backed façade methods must work without a flat store:
	// ParseSPARQL, QuerySPARQL and DecodeAnswer all read the graph's dict.
	pq, err := eng.ParseSPARQL("SELECT ?x WHERE { ?x <t8> ?y }")
	if err != nil {
		t.Fatalf("ParseSPARQL over sharded-only engine: %v", err)
	}
	res, err := eng.QuerySPARQL("SELECT ?x WHERE { ?x <t8> ?y } LIMIT 3", ModeSpecQP)
	if err != nil {
		t.Fatalf("QuerySPARQL over sharded-only engine: %v", err)
	}
	for _, a := range res.Answers {
		if dec := eng.DecodeAnswer(pq, a); len(dec) == 0 {
			t.Fatal("DecodeAnswer returned no bindings")
		}
	}
	base := NewEngineWith(st, rules, Options{})
	for qi, q := range queries {
		for _, mode := range []Mode{ModeSpecQP, ModeTriniT, ModeNaive} {
			want, err := base.Query(q, 10, mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Query(q, 10, mode)
			if err != nil {
				t.Fatal(err)
			}
			sameAnswers(t, fmt.Sprintf("NewEngineOver query %d mode %v", qi, mode), got.Answers, want.Answers)
		}
	}
}

// TestLiveInterleavedOracle is the live-ingest acceptance test: random
// interleavings of Insert, per-shard Compact, whole-store Compact and Query
// against a live sharded engine must be bit-identical — answers, scores,
// relaxation provenance, Spec-QP plan decisions — to a flat engine rebuilt
// from scratch over the same triple prefix, at every checkpoint, across the
// whole shard-count ladder and all three execution modes. Trials rotate the
// head limit through aggressive auto-compaction (5), manual-only (-1) and
// the default, so checkpoints land on every head/frozen mixture.
func TestLiveInterleavedOracle(t *testing.T) {
	headLimits := []int{5, -1, 0}
	for trial := int64(0); trial < 3; trial++ {
		dict, triples, rules, queries := randomLiveFixture(t, 9500+trial)
		base := len(triples) * 3 / 5
		headLimit := headLimits[trial%3]
		for _, shards := range oracleShardCounts {
			ss := kg.NewShardedStore(dict, shards)
			for _, tr := range triples[:base] {
				if err := ss.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			eng := NewEngineOver(ss, rules, Options{HeadLimit: headLimit})
			live, ok := eng.Graph().(LiveGraph)
			if !ok {
				t.Fatalf("engine graph %T is not a LiveGraph", eng.Graph())
			}
			pos := base
			check := func() {
				t.Helper()
				flat := kg.NewStore(dict)
				for _, tr := range triples[:pos] {
					if err := flat.Add(tr); err != nil {
						t.Fatal(err)
					}
				}
				flat.Freeze()
				ref := NewEngineWith(flat, rules, Options{Shards: 1})
				for qi, q := range queries[:3] {
					for _, mode := range []Mode{ModeSpecQP, ModeTriniT, ModeNaive} {
						k := 3 + qi + int(trial)
						want, err := ref.Query(q, k, mode)
						if err != nil {
							t.Fatal(err)
						}
						got, err := eng.Query(q, k, mode)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("trial %d shards=%d pos=%d/%d head=%d query %d mode %v k=%d",
							trial, shards, pos, len(triples), live.HeadLen(), qi, mode, k)
						sameAnswers(t, label, got.Answers, want.Answers)
						if mode == ModeSpecQP && got.Plan.RelaxMask() != want.Plan.RelaxMask() {
							t.Fatalf("%s: plan relax mask %b, want %b", label, got.Plan.RelaxMask(), want.Plan.RelaxMask())
						}
					}
				}
			}
			check() // freeze point, before any live insert
			// One op schedule per shard count (re-seeded), so every shard
			// count is checked at identical interleaving points.
			opRng := rand.New(rand.NewSource(777 + trial))
			for pos < len(triples) {
				switch op := opRng.Intn(14); {
				case op < 10:
					if err := eng.Insert(triples[pos]); err != nil {
						t.Fatal(err)
					}
					pos++
				case op == 10:
					eng.Compact()
				case op == 11:
					ss.CompactShard(opRng.Intn(shards))
				default:
					check()
				}
			}
			check() // every triple inserted, final state
			if headLimit == 5 && live.Compactions() == 0 {
				t.Fatalf("shards=%d: no automatic compaction with head limit 5", shards)
			}
			if got, want := eng.Graph().Len(), len(triples); got != want {
				t.Fatalf("shards=%d: live store has %d triples, streamed %d", shards, got, want)
			}
		}
	}
}

// TestLiveQueryBatchPlanCacheInvalidation pins the engine-level cache
// plumbing the oracle relies on: a QueryBatch answer computed before an
// insert must not be replayed from the plan cache or the statistics catalog
// after the insert changed the store's contents.
func TestLiveQueryBatchPlanCacheInvalidation(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 4242)
	base := len(triples) / 2
	ss := kg.NewShardedStore(dict, 3)
	for _, tr := range triples[:base] {
		if err := ss.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngineOver(ss, rules, Options{HeadLimit: -1})
	ctx := context.Background()
	if _, err := eng.QueryBatch(ctx, queries, 8, ModeSpecQP); err != nil {
		t.Fatal(err) // warm the plan cache against the pre-insert store
	}
	for _, tr := range triples[base:] {
		if err := eng.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	flat := kg.NewStore(dict)
	for _, tr := range triples {
		if err := flat.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	flat.Freeze()
	ref := NewEngineWith(flat, rules, Options{Shards: 1})
	results, err := eng.QueryBatch(ctx, queries, 8, ModeSpecQP)
	if err != nil {
		t.Fatal(err)
	}
	for qi, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", qi, r.Err)
		}
		want, err := ref.Query(queries[qi], 8, ModeSpecQP)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswers(t, fmt.Sprintf("post-insert batch query %d", qi), r.Result.Answers, want.Answers)
		if r.Result.Plan.RelaxMask() != want.Plan.RelaxMask() {
			t.Fatalf("query %d: stale plan relax mask %b, want %b", qi, r.Result.Plan.RelaxMask(), want.Plan.RelaxMask())
		}
	}
}

// TestShardedQueryContextCancellation smoke-tests the cancellation path over
// a sharded engine: background prefetchers must be released (the -race build
// and the goroutine-leak-adjacent Prefetch stop test in operators cover the
// mechanics; this pins the public API path).
func TestShardedQueryContextCancellation(t *testing.T) {
	st, rules, queries := randomEngineFixture(t, 77)
	eng := NewEngineWith(st, rules, Options{Shards: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, q := range queries {
		if _, err := eng.QueryContext(ctx, q, 5, ModeSpecQP); err == nil {
			t.Fatal("cancelled context returned no error")
		}
	}
}
