package specqp

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"

	"specqp/internal/kg"
	"specqp/internal/repl"
	"specqp/internal/wal"
)

// This file is the cross-process oracle for WAL log shipping: a follower —
// at ANY shard count — must answer bit-identically to a flat engine rebuilt
// from the primary's acked mutation prefix at every WAL position the shipping
// protocol lets it observe. It is the replication analogue of
// TestShardedEnginesBitIdentical (shard ladder) and the durable recovery
// oracle (acked-prefix discipline): bootstrap arrives as the checkpoint
// snapshot (the restart rule — base triples exist in no record), tails arrive
// as record batches, and a checkpoint racing a lagging follower must surface
// as a snapshot reinstall, never as a gap.

// replOp is one WAL-position-level mutation: an insert or a tombstone. An
// engine-level Update contributes two (its tombstone and its insert), exactly
// as it logs, so ops[i] is the record at WAL sequence i+1 and an oracle at
// position n is base + ops[:n].
type replOp struct {
	ins bool
	tr  Triple
}

// randomOps drives nOps WAL positions of mixed mutations through the primary
// engine and returns the op-level log. Terms stay inside the fixture's 16, so
// every dictionary in the test (fixture, snapshots, replicas, oracles)
// assigns identical IDs and answers compare at the raw Binding level.
func randomOps(t *testing.T, eng *Engine, rng *rand.Rand, nOps int) []replOp {
	t.Helper()
	randTriple := func() Triple {
		return Triple{
			S:     ID(rng.Intn(8)),
			P:     ID(8 + rng.Intn(3)),
			O:     ID(11 + rng.Intn(5)),
			Score: float64(1 + rng.Intn(25)),
		}
	}
	var ops []replOp
	for len(ops) < nOps {
		switch r := rng.Intn(10); {
		case r < 6 || len(ops) == 0:
			tr := randTriple()
			if err := eng.Insert(tr); err != nil {
				t.Fatal(err)
			}
			ops = append(ops, replOp{ins: true, tr: tr})
		case r < 8:
			// Delete a random key — sometimes absent, which still consumes a
			// sequence number (the durable layer logs no-op deletes too).
			tr := randTriple()
			if _, err := eng.Delete(tr.S, tr.P, tr.O); err != nil {
				t.Fatal(err)
			}
			ops = append(ops, replOp{tr: tr})
		default:
			if len(ops)+2 > nOps {
				continue
			}
			tr := randTriple()
			if err := eng.Update(tr); err != nil {
				t.Fatal(err)
			}
			ops = append(ops, replOp{tr: tr}, replOp{ins: true, tr: tr})
		}
	}
	return ops
}

// opsOracle is the acked-prefix reference engine at WAL position n: the base
// triples frozen flat, then ops[:n] applied live — the exact state a crashed
// primary would recover at that position.
func opsOracle(t *testing.T, dict *kg.Dict, triples []Triple, base int, ops []replOp, n int, rules *RuleSet) *Engine {
	t.Helper()
	st := buildBaseStore(t, dict, triples, base)
	st.Freeze()
	eng := NewEngineWith(st, rules, Options{Shards: 1})
	for _, op := range ops[:n] {
		if op.ins {
			if err := eng.Insert(op.tr); err != nil {
				t.Fatal(err)
			}
		} else if _, err := eng.Delete(op.tr.S, op.tr.P, op.tr.O); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// oracleCache memoises opsOracle by position — every follower in a shard
// ladder observes roughly the same delivery boundaries.
type oracleCache struct {
	t       *testing.T
	dict    *kg.Dict
	triples []Triple
	base    int
	ops     []replOp
	rules   *RuleSet
	cache   map[uint64]*Engine
}

func (c *oracleCache) at(pos uint64) *Engine {
	if eng, ok := c.cache[pos]; ok {
		return eng
	}
	eng := opsOracle(c.t, c.dict, c.triples, c.base, c.ops, int(pos), c.rules)
	c.cache[pos] = eng
	return eng
}

// decTriple is a decoded survivor triple for state-level comparison.
type decTriple struct {
	S, P, O string
	Score   float64
}

// survivorTriples enumerates a graph's LIVE triples, decoded, in canonical
// insertion order, by round-tripping through the snapshot format — the same
// enumeration checkpoints ship. This matters because Graph.Len()/Triple(i) on
// a live graph still count tombstone-masked dead copies until compaction: a
// snapshot-installed replica (survivors only) and a replay-built oracle
// (masked deads retained) must compare equal at the survivor level, which is
// the state the queries actually see.
func survivorTriples(t *testing.T, g Graph) []decTriple {
	t.Helper()
	var buf bytes.Buffer
	if _, _, err := kg.WriteGraphSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	st, err := kg.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d := st.Dict()
	out := make([]decTriple, st.Len())
	for i := range out {
		tr := st.Triple(int32(i))
		out[i] = decTriple{S: d.Decode(tr.S), P: d.Decode(tr.P), O: d.Decode(tr.O), Score: tr.Score}
	}
	return out
}

// assertSameTriples compares two graphs' surviving triples, decoded, in
// canonical order — the state-identity half of the oracle, independent of
// query execution.
func assertSameTriples(t *testing.T, label string, g, og Graph) {
	t.Helper()
	a, b := survivorTriples(t, g), survivorTriples(t, og)
	if len(a) != len(b) {
		t.Fatalf("%s: %d live triples, oracle has %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: live triple %d = %v, oracle has %v", label, i, a[i], b[i])
		}
	}
}

// assertReplicaOracle compares a replica's answers against the oracle engine
// under all four modes — exact float equality, raw bindings, relaxation
// provenance included (sameAnswers).
func assertReplicaOracle(t *testing.T, label string, rep *Replica, oracle *Engine, queries []Query) {
	t.Helper()
	eng := rep.Engine()
	if eng == nil {
		t.Fatalf("%s: replica not bootstrapped", label)
	}
	for qi, q := range queries[:3] {
		for _, mode := range []Mode{ModeSpecQP, ModeTriniT, ModeNaive, ModeExact} {
			want, err := oracle.Query(q, 8, mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Query(q, 8, mode)
			if err != nil {
				t.Fatal(err)
			}
			sameAnswers(t, fmt.Sprintf("%s query %d mode %v", label, qi, mode), got.Answers, want.Answers)
		}
	}
}

// mustListen binds a loopback TCP listener for wire-level tests.
func mustListen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// bootstrapReplica steps a follower until the first snapshot installs — the
// only way a blank replica can acquire state.
func bootstrapReplica(t *testing.T, label string, f *repl.Follower, rep *Replica, maxSteps int) {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		if rep.Engine() != nil {
			return
		}
		if _, err := f.Step(); err != nil && !errors.Is(err, repl.ErrInjected) && !errors.Is(err, repl.ErrCorrupt) {
			t.Fatalf("%s: bootstrap step: %v", label, err)
		}
	}
	t.Fatalf("%s: replica never bootstrapped after %d steps", label, maxSteps)
}

// stepReplicaTo steps a follower until the replica reaches at least target,
// tolerating injected faults and corrupt (torn) deliveries — both are
// retryable by contract. After every progressing step the replica's state is
// compared against the oracle at its newly observed position: that is the
// "bit-identical at every observed lag position" half of the acceptance.
func stepReplicaTo(t *testing.T, label string, f *repl.Follower, rep *Replica, target uint64, oc *oracleCache, queries []Query, maxSteps int) {
	t.Helper()
	prev := rep.AppliedSeq()
	for i := 0; i < maxSteps; i++ {
		if rep.AppliedSeq() >= target {
			return
		}
		progressed, err := f.Step()
		if err != nil && !errors.Is(err, repl.ErrInjected) && !errors.Is(err, repl.ErrCorrupt) {
			t.Fatalf("%s: step: %v", label, err)
		}
		pos := rep.AppliedSeq()
		if pos < prev {
			t.Fatalf("%s: applied position rewound %d -> %d", label, prev, pos)
		}
		if progressed && pos != prev {
			oracle := oc.at(pos)
			assertSameTriples(t, fmt.Sprintf("%s pos %d", label, pos), rep.Engine().Graph(), oracle.Graph())
			if queries != nil {
				assertReplicaOracle(t, fmt.Sprintf("%s pos %d", label, pos), rep, oracle, queries)
			}
			prev = pos
		}
	}
	t.Fatalf("%s: follower stuck at %d, want %d after %d steps", label, rep.AppliedSeq(), target, maxSteps)
}

// TestReplicaBitIdenticalAcrossShardLadder is the headline oracle: one
// primary (itself sharded), five followers across the shard ladder, mixed
// inserts/deletes/updates shipped in chunks with a mid-stream checkpoint
// truncating the log, and a late-joining laggard that must recover through
// the snapshot fallback. Every follower is compared against the acked-prefix
// oracle at every position it observes, under all four modes.
func TestReplicaBitIdenticalAcrossShardLadder(t *testing.T) {
	for trial := int64(0); trial < 2; trial++ {
		dict, triples, rules, queries := randomLiveFixture(t, 9100+trial)
		rng := rand.New(rand.NewSource(9200 + trial))
		base := len(triples) / 2
		fs := wal.NewMemFS()
		eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules, Options{
			Shards:          2,
			SyncPolicy:      SyncAlways,
			WALSegmentSize:  1 << 11,
			CheckpointBytes: -1, // manual checkpoints only: the test owns truncation timing
		})
		if err != nil {
			t.Fatal(err)
		}
		prim := repl.NewPrimary(eng.WALFeed(), repl.PrimaryOptions{PollWait: -1, MaxBatchBytes: 512})

		type fol struct {
			rep *Replica
			f   *repl.Follower
		}
		followers := make(map[int]*fol, len(oracleShardCounts))
		oc := &oracleCache{t: t, dict: dict, triples: triples, base: base, rules: rules, cache: map[uint64]*Engine{}}
		for _, shards := range oracleShardCounts {
			rep := NewReplica(rules, Options{Shards: shards})
			followers[shards] = &fol{rep: rep, f: repl.NewFollower(&repl.LocalClient{Primary: prim}, rep, repl.FollowerOptions{})}
			// Bootstrap from the opening checkpoint: position 0.
			bootstrapReplica(t, fmt.Sprintf("trial %d shards %d", trial, shards), followers[shards].f, rep, 4)
			assertReplicaOracle(t, fmt.Sprintf("trial %d shards %d pos 0", trial, shards), rep, oc.at(0), queries)
		}

		// The laggard: bootstrapped at position 0, then left unstepped until
		// after the mid-stream checkpoint truncates position 0 away.
		laggard := &fol{rep: NewReplica(rules, Options{Shards: 7})}
		laggard.f = repl.NewFollower(&repl.LocalClient{Primary: prim}, laggard.rep, repl.FollowerOptions{})
		bootstrapReplica(t, "laggard", laggard.f, laggard.rep, 4)

		const chunks, perChunk = 5, 24
		var ops []replOp
		for chunk := 0; chunk < chunks; chunk++ {
			ops = append(ops, randomOps(t, eng, rng, perChunk)...)
			oc.ops = ops
			target := uint64(len(ops))
			if chunk == 2 {
				// Mid-stream checkpoint: truncates every shipped position so
				// far. Caught-up followers keep tailing; the laggard's next
				// pull must fall back to this snapshot.
				if err := eng.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
			for _, shards := range oracleShardCounts {
				stepReplicaTo(t, fmt.Sprintf("trial %d shards %d chunk %d", trial, shards, chunk),
					followers[shards].f, followers[shards].rep, target, oc, queries, 200)
			}
		}

		// The laggard wakes up at position 0 with positions 1..48 truncated:
		// its recovery MUST route through the snapshot fallback and still land
		// bit-identical at the tip.
		before := laggard.rep.AppliedSeq()
		stepReplicaTo(t, "laggard catch-up", laggard.f, laggard.rep, uint64(len(ops)), oc, queries, 400)
		if before != 0 {
			t.Fatalf("laggard moved before the catch-up phase: %d", before)
		}

		// Final: every follower at the tip, full four-mode comparison, and the
		// primary itself agrees with its own acked-prefix oracle.
		tip := oc.at(uint64(len(ops)))
		assertSameTriples(t, "primary tip", eng.Graph(), tip.Graph())
		for _, shards := range oracleShardCounts {
			assertReplicaOracle(t, fmt.Sprintf("trial %d shards %d tip", trial, shards), followers[shards].rep, tip, queries)
		}
		assertReplicaOracle(t, "laggard tip", laggard.rep, tip, queries)
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReplicaOverTCPMatchesOracle runs the same oracle through the real
// network client against a live TCP primary — the cross-process wire path —
// including a forced disconnect mid-stream (resume via positional pull).
func TestReplicaOverTCPMatchesOracle(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 9500)
	rng := rand.New(rand.NewSource(9501))
	base := len(triples) / 2
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules, Options{
		Shards:          1,
		SyncPolicy:      SyncAlways,
		WALSegmentSize:  1 << 11,
		CheckpointBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	prim := repl.NewPrimary(eng.WALFeed(), repl.PrimaryOptions{PollWait: -1, MaxBatchBytes: 512})
	ln := mustListen(t)
	go prim.Serve(ln)
	defer prim.Close()

	client := repl.NewNetClient(ln.Addr().String(), repl.NetClientOptions{})
	defer client.Close()
	rep := NewReplica(rules, Options{Shards: 3})
	f := repl.NewFollower(client, rep, repl.FollowerOptions{})
	oc := &oracleCache{t: t, dict: dict, triples: triples, base: base, rules: rules, cache: map[uint64]*Engine{}}
	bootstrapReplica(t, "tcp", f, rep, 4)
	assertReplicaOracle(t, "tcp pos 0", rep, oc.at(0), queries)

	ops := randomOps(t, eng, rng, 40)
	oc.ops = ops
	stepReplicaTo(t, "tcp first half", f, rep, uint64(len(ops)), oc, queries, 200)

	// Disconnect; the next pull redials and resumes from the applied position.
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	ops = append(ops, randomOps(t, eng, rng, 40)...)
	oc.ops = ops
	stepReplicaTo(t, "tcp after reconnect", f, rep, uint64(len(ops)), oc, queries, 200)
	assertReplicaOracle(t, "tcp tip", rep, oc.at(uint64(len(ops))), queries)
}
