package specqp

import (
	"specqp/internal/kg"
)

// EngineStats is a point-in-time snapshot of the engine's internals: store
// occupancy across the LSM tiers, compaction and cache behaviour, and — on
// durable engines — WAL group-commit, fsync and checkpoint activity. All
// counters are cumulative since engine construction; gauges (sizes, pinned
// snapshots) are instantaneous. Collecting a snapshot takes no locks beyond
// the atomic loads, so it is safe to call from a metrics scrape path at any
// frequency.
type EngineStats struct {
	// Store occupancy. LiveTriples counts non-retracted triples; HeadLen and
	// L1Len are the un-compacted mutable tiers; Tombstones counts pending
	// retraction keys (a full Compact drives it to zero).
	LiveTriples int `json:"live_triples"`
	HeadLen     int `json:"head_len"`
	L1Len       int `json:"l1_len"`
	Tombstones  int `json:"tombstones"`
	// Ops mirrors the WAL sequence on durable engines: triples at freeze
	// plus one per Insert/Delete and two per Update.
	Ops uint64 `json:"ops"`

	// Compaction activity, split by tier: full merges rebuild the frozen
	// arenas, tiered merges fold the head into L1.
	Compactions        uint64 `json:"compactions"`
	CompactionsFull    uint64 `json:"compactions_full"`
	CompactionsTiered  uint64 `json:"compactions_tiered"`
	CompactionFullNS   int64  `json:"compaction_full_ns"`
	CompactionTieredNS int64  `json:"compaction_tiered_ns"`

	// PinnedSnapshots counts consistent read views taken (cumulative): each
	// pin froze the then-current head prefix for an isolated reader.
	PinnedSnapshots int64 `json:"pinned_snapshots"`

	// Plan cache (shape-keyed speculative plans) and merged/residual list
	// cache hit accounting. The list-cache tallies are process-wide — cache
	// instances are per-snapshot and dropped wholesale on version changes.
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	ListCacheHits   int64 `json:"list_cache_hits"`
	ListCacheMisses int64 `json:"list_cache_misses"`

	// WAL activity; the zero values mean "not a durable engine" (check
	// Durable, not WALSize — an empty log is legitimately size 0).
	Durable bool `json:"durable"`
	// WALLastSeq is the last reserved log sequence number and WALSize the
	// byte size of the live segments — together the log position.
	WALLastSeq  uint64 `json:"wal_last_seq,omitempty"`
	WALSize     int64  `json:"wal_size,omitempty"`
	WALSegments int    `json:"wal_segments,omitempty"`
	// Group commit: WALCommits batches carried WALCommitRecords records —
	// the ratio is the mean group-commit batch size.
	WALCommits       int64 `json:"wal_commits,omitempty"`
	WALCommitRecords int64 `json:"wal_commit_records,omitempty"`
	// Fsync latency: cumulative count and nanoseconds, plus the most recent
	// sync's duration.
	WALFsyncs      int64 `json:"wal_fsyncs,omitempty"`
	WALFsyncNS     int64 `json:"wal_fsync_ns,omitempty"`
	WALLastFsyncNS int64 `json:"wal_last_fsync_ns,omitempty"`
	// Checkpoints: cumulative count, wall time, and the byte size of the
	// newest committed snapshot.
	Checkpoints         int64 `json:"checkpoints,omitempty"`
	CheckpointNS        int64 `json:"checkpoint_ns,omitempty"`
	LastCheckpointBytes int64 `json:"last_checkpoint_bytes,omitempty"`
	// Wedged reports the sticky WAL failure state (reads keep serving).
	Wedged bool `json:"wedged,omitempty"`
}

// Stats collects an EngineStats snapshot. Cheap and lock-free: safe on every
// /metrics scrape and /healthz probe.
func (e *Engine) Stats() EngineStats {
	var s EngineStats
	s.LiveTriples = e.graph.Len()
	if lg, ok := e.graph.(kg.LiveGraph); ok {
		s.LiveTriples = lg.LiveLen()
		s.HeadLen = lg.HeadLen()
		s.Tombstones = lg.Tombstones()
		s.Ops = lg.Ops()
		s.Compactions = lg.Compactions()
	}
	// L1Len, per-tier compaction split and pin counts live on the concrete
	// store layouts, not the LiveGraph interface.
	switch g := e.graph.(type) {
	case *kg.Store:
		s.L1Len = g.L1Len()
		s.CompactionsFull, s.CompactionsTiered, s.CompactionFullNS, s.CompactionTieredNS = g.CompactionStats()
		s.PinnedSnapshots = g.Pins()
	case *kg.ShardedStore:
		s.L1Len = g.L1Len()
		s.CompactionsFull, s.CompactionsTiered, s.CompactionFullNS, s.CompactionTieredNS = g.CompactionStats()
		s.PinnedSnapshots = g.Pins()
	}
	s.PlanCacheHits, s.PlanCacheMisses = e.plans.Stats()
	s.ListCacheHits, s.ListCacheMisses = kg.ListCacheStats()
	if w := e.wal; w != nil {
		s.Durable = true
		s.WALLastSeq = w.log.LastSeq()
		s.WALSize = w.log.Size()
		s.WALSegments = w.log.SegmentCount()
		s.WALCommits = w.commits.Load()
		s.WALCommitRecords = w.commitRecords.Load()
		s.WALFsyncs = w.fsyncCount.Load()
		s.WALFsyncNS = w.fsyncNS.Load()
		s.WALLastFsyncNS = w.lastFsyncNS.Load()
		s.Checkpoints = w.checkpoints.Load()
		s.CheckpointNS = w.checkpointNS.Load()
		s.LastCheckpointBytes = w.lastCheckpoint.Load()
		s.Wedged = w.log.Wedged()
	}
	return s
}
