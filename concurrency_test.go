package specqp

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestEngineConcurrentQueries exercises the documented guarantee that one
// Engine serves concurrent queries safely once the store is frozen: the
// match-list cache, the statistics catalog and the query-count cache are all
// hit from multiple goroutines, and every goroutine must see identical
// answers. Run with -race for the full effect.
func TestEngineConcurrentQueries(t *testing.T) {
	st := NewStore()
	for e := 0; e < 500; e++ {
		name := fmt.Sprintf("e%03d", e)
		score := 1000.0 / float64(1+e)
		if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", e%7), score); err != nil {
			t.Fatal(err)
		}
		if e%3 == 0 {
			if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", (e+1)%7), score*0.9); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("rdf:type")
	pat := func(i int) Pattern {
		id, _ := d.Lookup(fmt.Sprintf("T%d", i))
		return NewPattern(Var("s"), Const(ty), Const(id))
	}
	rules := NewRuleSet()
	for i := 0; i < 7; i++ {
		if err := rules.Add(Rule{From: pat(i), To: pat((i + 1) % 7), Weight: 0.5 + float64(i)/20}); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngine(st, rules)

	queries := []Query{
		NewQuery(pat(0), pat(1)),
		NewQuery(pat(2), pat(3)),
		NewQuery(pat(4), pat(5), pat(6)),
	}
	// Reference answers computed sequentially first.
	refs := make([][]Answer, len(queries))
	for i, q := range queries {
		res, err := eng.Query(q, 10, ModeSpecQP)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = res.Answers
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				qi := (w + rep) % len(queries)
				res, err := eng.Query(queries[qi], 10, ModeSpecQP)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Answers) != len(refs[qi]) {
					errs <- fmt.Errorf("worker %d: %d answers, want %d", w, len(res.Answers), len(refs[qi]))
					return
				}
				for i := range res.Answers {
					if math.Abs(res.Answers[i].Score-refs[qi][i].Score) > 1e-9 {
						errs <- fmt.Errorf("worker %d: rank %d score %v want %v",
							w, i, res.Answers[i].Score, refs[qi][i].Score)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEngineConcurrentMixedModes runs all three engines concurrently against
// one store to exercise shared caches under mixed read patterns.
func TestEngineConcurrentMixedModes(t *testing.T) {
	eng, q := engineFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mode := []Mode{ModeSpecQP, ModeTriniT, ModeNaive}[w%3]
			if _, err := eng.Query(q, 3, mode); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
