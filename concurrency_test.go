package specqp

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"specqp/internal/kg"
)

// TestEngineConcurrentQueries exercises the documented guarantee that one
// Engine serves concurrent queries safely once the store is frozen: the
// match-list cache, the statistics catalog and the query-count cache are all
// hit from multiple goroutines, and every goroutine must see identical
// answers. Run with -race for the full effect.
func TestEngineConcurrentQueries(t *testing.T) {
	st := NewStore()
	for e := 0; e < 500; e++ {
		name := fmt.Sprintf("e%03d", e)
		score := 1000.0 / float64(1+e)
		if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", e%7), score); err != nil {
			t.Fatal(err)
		}
		if e%3 == 0 {
			if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", (e+1)%7), score*0.9); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("rdf:type")
	pat := func(i int) Pattern {
		id, _ := d.Lookup(fmt.Sprintf("T%d", i))
		return NewPattern(Var("s"), Const(ty), Const(id))
	}
	rules := NewRuleSet()
	for i := 0; i < 7; i++ {
		if err := rules.Add(Rule{From: pat(i), To: pat((i + 1) % 7), Weight: 0.5 + float64(i)/20}); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngine(st, rules)

	queries := []Query{
		NewQuery(pat(0), pat(1)),
		NewQuery(pat(2), pat(3)),
		NewQuery(pat(4), pat(5), pat(6)),
	}
	// Reference answers computed sequentially first.
	refs := make([][]Answer, len(queries))
	for i, q := range queries {
		res, err := eng.Query(q, 10, ModeSpecQP)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = res.Answers
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				qi := (w + rep) % len(queries)
				res, err := eng.Query(queries[qi], 10, ModeSpecQP)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Answers) != len(refs[qi]) {
					errs <- fmt.Errorf("worker %d: %d answers, want %d", w, len(res.Answers), len(refs[qi]))
					return
				}
				for i := range res.Answers {
					if math.Abs(res.Answers[i].Score-refs[qi][i].Score) > 1e-9 {
						errs <- fmt.Errorf("worker %d: rank %d score %v want %v",
							w, i, res.Answers[i].Score, refs[qi][i].Score)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestShardedQueryBatchHammer is the sharded concurrency hammer: QueryBatch
// over a multi-segment engine under -race, with a query mix that hits every
// shared structure at once — recurring shapes exercise the LRU plan cache,
// S+O-bound and repeated-variable patterns exercise each shard's residual
// single-flight cache plus the sharded store's merged-list cache, and plain
// patterns run through the per-shard merge scans and leg prefetchers. Every
// batch's answers must equal the sequential unsharded reference.
func TestShardedQueryBatchHammer(t *testing.T) {
	st := NewStore()
	for e := 0; e < 400; e++ {
		name := fmt.Sprintf("e%03d", e)
		score := 1000.0 / float64(1+e)
		if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", e%7), score); err != nil {
			t.Fatal(err)
		}
		if err := st.AddSPO(name, "linksTo", fmt.Sprintf("e%03d", (e*3+1)%400), score/2); err != nil {
			t.Fatal(err)
		}
		if e%5 == 0 { // duplicate (s,p,o) keys keep the dedup paths honest
			if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", e%7), score*0.7); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("rdf:type")
	links, _ := d.Lookup("linksTo")
	typePat := func(i int) Pattern {
		id, _ := d.Lookup(fmt.Sprintf("T%d", i))
		return NewPattern(Var("s"), Const(ty), Const(id))
	}
	rules := NewRuleSet()
	for i := 0; i < 7; i++ {
		if err := rules.Add(Rule{From: typePat(i), To: typePat((i + 2) % 7), Weight: 0.4 + float64(i)/20}); err != nil {
			t.Fatal(err)
		}
	}

	var queries []Query
	for i := 0; i < 7; i++ {
		e0, _ := d.Lookup(fmt.Sprintf("e%03d", i*13))
		queries = append(queries,
			// Recurring two-pattern shape: plan-cache hits across the batch.
			NewQuery(typePat(i), typePat((i+1)%7)),
			// Join through linksTo: per-shard merge paths on both legs.
			NewQuery(typePat(i), NewPattern(Var("s"), Const(links), Var("o"))),
			// S+O bound residual shape per shard.
			NewQuery(NewPattern(Const(e0), Var("p"), Const(e0)), typePat(i)),
			// Repeated-variable residual shape.
			NewQuery(NewPattern(Var("x"), Const(links), Var("x")), typePat(i)),
		)
	}

	ref := NewEngineWith(st, rules, Options{Shards: 1})
	refAnswers := make([][]Answer, len(queries))
	for i, q := range queries {
		res, err := ref.Query(q, 10, ModeSpecQP)
		if err != nil {
			t.Fatal(err)
		}
		refAnswers[i] = res.Answers
	}

	eng := NewEngineWith(st, rules, Options{Shards: 4, BatchWorkers: 8, PlanCacheSize: 16})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				results, err := eng.QueryBatch(context.Background(), queries, 10, ModeSpecQP)
				if err != nil {
					errs <- err
					return
				}
				for qi, r := range results {
					if r.Err != nil {
						errs <- fmt.Errorf("worker %d query %d: %v", w, qi, r.Err)
						return
					}
					if len(r.Result.Answers) != len(refAnswers[qi]) {
						errs <- fmt.Errorf("worker %d query %d: %d answers, want %d",
							w, qi, len(r.Result.Answers), len(refAnswers[qi]))
						return
					}
					for i, a := range r.Result.Answers {
						want := refAnswers[qi][i]
						if a.Score != want.Score || a.Binding.Compare(want.Binding) != 0 {
							errs <- fmt.Errorf("worker %d query %d rank %d: %v, want %v", w, qi, i, a, want)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestLiveIngestHammer is the live-ingest concurrency hammer, built to run
// under -race: writer goroutines Insert into a sharded live engine while
// reader goroutines run QueryBatch and a compactor forces whole-store and
// single-shard merges, all at a head limit small enough that automatic
// compactions fire constantly. Asserted invariants:
//
//   - no reader ever observes a torn state: every query succeeds and every
//     answer carries a finite score within the mode's bound and bindings
//     that decode against the dictionary;
//   - Len() is monotone non-decreasing throughout;
//   - at quiescence the live store answers bit-identically to a flat store
//     rebuilt from its final contents, and every insert is accounted for.
func TestLiveIngestHammer(t *testing.T) {
	dict := kg.NewDict()
	ty := dict.Encode("rdf:type")
	links := dict.Encode("linksTo")
	var types [7]ID
	for i := range types {
		types[i] = dict.Encode(fmt.Sprintf("T%d", i))
	}
	var ents [400]ID
	for i := range ents {
		ents[i] = dict.Encode(fmt.Sprintf("e%03d", i))
	}

	ss := kg.NewShardedStore(dict, 4)
	const base = 200
	for e := 0; e < base; e++ {
		score := 1000.0 / float64(1+e)
		if err := ss.Add(Triple{S: ents[e], P: ty, O: types[e%7], Score: score}); err != nil {
			t.Fatal(err)
		}
	}
	typePat := func(i int) Pattern {
		return NewPattern(Var("s"), Const(ty), Const(types[i]))
	}
	rules := NewRuleSet()
	for i := 0; i < 7; i++ {
		if err := rules.Add(Rule{From: typePat(i), To: typePat((i + 1) % 7), Weight: 0.5 + float64(i)/20}); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngineOver(ss, rules, Options{HeadLimit: 32, BatchWorkers: 4})

	var queries []Query
	for i := 0; i < 5; i++ {
		queries = append(queries,
			NewQuery(typePat(i), typePat((i+2)%7)),
			NewQuery(typePat(i), NewPattern(Var("s"), Const(links), Var("o"))),
		)
	}

	const writers = 3
	const perWriter = 250
	var writersDone sync.WaitGroup
	var running atomic.Bool
	running.Store(true)
	errs := make(chan error, 64)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	for w := 0; w < writers; w++ {
		writersDone.Add(1)
		go func(w int) {
			defer writersDone.Done()
			for i := 0; i < perWriter; i++ {
				n := w*perWriter + i
				tr := Triple{
					S:     ents[n%len(ents)],
					P:     links,
					O:     ents[(n*7+3)%len(ents)],
					Score: float64(1 + n%97),
				}
				if n%5 == 0 {
					tr.P, tr.O = ty, types[n%7]
				}
				if err := eng.Insert(tr); err != nil {
					fail("writer %d insert %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}

	// Compactor: alternate whole-store and single-shard merges while the
	// writers run.
	compactorDone := make(chan struct{})
	go func() {
		defer close(compactorDone)
		for i := 0; running.Load(); i++ {
			if i%2 == 0 {
				eng.Compact()
			} else {
				ss.CompactShard(i % ss.NumShards())
			}
		}
	}()

	// Monotone-Len observer.
	lenDone := make(chan struct{})
	go func() {
		defer close(lenDone)
		last := 0
		for running.Load() {
			l := eng.Graph().Len()
			if l < last {
				fail("Len went backwards: %d after %d", l, last)
				return
			}
			last = l
		}
	}()

	// Readers: QueryBatch under mutation; answers must be well-formed even
	// though their exact contents race the inserts.
	var readersDone sync.WaitGroup
	for r := 0; r < 3; r++ {
		readersDone.Add(1)
		go func(r int) {
			defer readersDone.Done()
			for rep := 0; running.Load(); rep++ {
				results, err := eng.QueryBatch(context.Background(), queries, 5, ModeSpecQP)
				if err != nil {
					fail("reader %d: %v", r, err)
					return
				}
				for qi, res := range results {
					if res.Err != nil {
						fail("reader %d query %d: %v", r, qi, res.Err)
						return
					}
					bound := float64(len(queries[qi].Patterns)) + 1e-9
					for _, a := range res.Result.Answers {
						if math.IsNaN(a.Score) || a.Score < 0 || a.Score > bound {
							fail("reader %d query %d: torn score %v (bound %v)", r, qi, a.Score, bound)
							return
						}
						for _, id := range a.Binding {
							if id != kg.NoID && int(id) >= dict.Len() {
								fail("reader %d query %d: binding id %d beyond dictionary", r, qi, id)
								return
							}
						}
					}
				}
			}
		}(r)
	}

	writersDone.Wait()
	running.Store(false)
	readersDone.Wait()
	<-compactorDone
	<-lenDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent verification: every insert landed, compactions happened, and
	// the final live store is bit-identical to a flat rebuild of its
	// contents.
	if got, want := eng.Graph().Len(), base+writers*perWriter; got != want {
		t.Fatalf("final store has %d triples, want %d", got, want)
	}
	live := eng.Graph().(LiveGraph)
	if live.Compactions() == 0 {
		t.Fatal("hammer finished without a single compaction")
	}
	eng.Compact()
	if live.HeadLen() != 0 {
		t.Fatalf("head holds %d triples after final Compact", live.HeadLen())
	}
	flat := kg.NewStore(dict)
	for i := 0; i < eng.Graph().Len(); i++ {
		if err := flat.Add(eng.Graph().Triple(int32(i))); err != nil {
			t.Fatal(err)
		}
	}
	flat.Freeze()
	ref := NewEngineWith(flat, rules, Options{Shards: 1})
	for qi, q := range queries {
		want, err := ref.Query(q, 10, ModeSpecQP)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Query(q, 10, ModeSpecQP)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Answers) != len(want.Answers) {
			t.Fatalf("query %d: %d answers, flat rebuild %d", qi, len(got.Answers), len(want.Answers))
		}
		for i := range got.Answers {
			g, w := got.Answers[i], want.Answers[i]
			if g.Score != w.Score || g.Binding.Compare(w.Binding) != 0 || g.Relaxed != w.Relaxed {
				t.Fatalf("query %d rank %d: %v, flat rebuild %v", qi, i, g, w)
			}
		}
	}
}

// TestEngineConcurrentMixedModes runs all three engines concurrently against
// one store to exercise shared caches under mixed read patterns.
func TestEngineConcurrentMixedModes(t *testing.T) {
	eng, q := engineFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mode := []Mode{ModeSpecQP, ModeTriniT, ModeNaive}[w%3]
			if _, err := eng.Query(q, 3, mode); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
