package specqp

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestEngineConcurrentQueries exercises the documented guarantee that one
// Engine serves concurrent queries safely once the store is frozen: the
// match-list cache, the statistics catalog and the query-count cache are all
// hit from multiple goroutines, and every goroutine must see identical
// answers. Run with -race for the full effect.
func TestEngineConcurrentQueries(t *testing.T) {
	st := NewStore()
	for e := 0; e < 500; e++ {
		name := fmt.Sprintf("e%03d", e)
		score := 1000.0 / float64(1+e)
		if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", e%7), score); err != nil {
			t.Fatal(err)
		}
		if e%3 == 0 {
			if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", (e+1)%7), score*0.9); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("rdf:type")
	pat := func(i int) Pattern {
		id, _ := d.Lookup(fmt.Sprintf("T%d", i))
		return NewPattern(Var("s"), Const(ty), Const(id))
	}
	rules := NewRuleSet()
	for i := 0; i < 7; i++ {
		if err := rules.Add(Rule{From: pat(i), To: pat((i + 1) % 7), Weight: 0.5 + float64(i)/20}); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngine(st, rules)

	queries := []Query{
		NewQuery(pat(0), pat(1)),
		NewQuery(pat(2), pat(3)),
		NewQuery(pat(4), pat(5), pat(6)),
	}
	// Reference answers computed sequentially first.
	refs := make([][]Answer, len(queries))
	for i, q := range queries {
		res, err := eng.Query(q, 10, ModeSpecQP)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = res.Answers
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				qi := (w + rep) % len(queries)
				res, err := eng.Query(queries[qi], 10, ModeSpecQP)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Answers) != len(refs[qi]) {
					errs <- fmt.Errorf("worker %d: %d answers, want %d", w, len(res.Answers), len(refs[qi]))
					return
				}
				for i := range res.Answers {
					if math.Abs(res.Answers[i].Score-refs[qi][i].Score) > 1e-9 {
						errs <- fmt.Errorf("worker %d: rank %d score %v want %v",
							w, i, res.Answers[i].Score, refs[qi][i].Score)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestShardedQueryBatchHammer is the sharded concurrency hammer: QueryBatch
// over a multi-segment engine under -race, with a query mix that hits every
// shared structure at once — recurring shapes exercise the LRU plan cache,
// S+O-bound and repeated-variable patterns exercise each shard's residual
// single-flight cache plus the sharded store's merged-list cache, and plain
// patterns run through the per-shard merge scans and leg prefetchers. Every
// batch's answers must equal the sequential unsharded reference.
func TestShardedQueryBatchHammer(t *testing.T) {
	st := NewStore()
	for e := 0; e < 400; e++ {
		name := fmt.Sprintf("e%03d", e)
		score := 1000.0 / float64(1+e)
		if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", e%7), score); err != nil {
			t.Fatal(err)
		}
		if err := st.AddSPO(name, "linksTo", fmt.Sprintf("e%03d", (e*3+1)%400), score/2); err != nil {
			t.Fatal(err)
		}
		if e%5 == 0 { // duplicate (s,p,o) keys keep the dedup paths honest
			if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", e%7), score*0.7); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("rdf:type")
	links, _ := d.Lookup("linksTo")
	typePat := func(i int) Pattern {
		id, _ := d.Lookup(fmt.Sprintf("T%d", i))
		return NewPattern(Var("s"), Const(ty), Const(id))
	}
	rules := NewRuleSet()
	for i := 0; i < 7; i++ {
		if err := rules.Add(Rule{From: typePat(i), To: typePat((i + 2) % 7), Weight: 0.4 + float64(i)/20}); err != nil {
			t.Fatal(err)
		}
	}

	var queries []Query
	for i := 0; i < 7; i++ {
		e0, _ := d.Lookup(fmt.Sprintf("e%03d", i*13))
		queries = append(queries,
			// Recurring two-pattern shape: plan-cache hits across the batch.
			NewQuery(typePat(i), typePat((i+1)%7)),
			// Join through linksTo: per-shard merge paths on both legs.
			NewQuery(typePat(i), NewPattern(Var("s"), Const(links), Var("o"))),
			// S+O bound residual shape per shard.
			NewQuery(NewPattern(Const(e0), Var("p"), Const(e0)), typePat(i)),
			// Repeated-variable residual shape.
			NewQuery(NewPattern(Var("x"), Const(links), Var("x")), typePat(i)),
		)
	}

	ref := NewEngineWith(st, rules, Options{Shards: 1})
	refAnswers := make([][]Answer, len(queries))
	for i, q := range queries {
		res, err := ref.Query(q, 10, ModeSpecQP)
		if err != nil {
			t.Fatal(err)
		}
		refAnswers[i] = res.Answers
	}

	eng := NewEngineWith(st, rules, Options{Shards: 4, BatchWorkers: 8, PlanCacheSize: 16})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				results, err := eng.QueryBatch(context.Background(), queries, 10, ModeSpecQP)
				if err != nil {
					errs <- err
					return
				}
				for qi, r := range results {
					if r.Err != nil {
						errs <- fmt.Errorf("worker %d query %d: %v", w, qi, r.Err)
						return
					}
					if len(r.Result.Answers) != len(refAnswers[qi]) {
						errs <- fmt.Errorf("worker %d query %d: %d answers, want %d",
							w, qi, len(r.Result.Answers), len(refAnswers[qi]))
						return
					}
					for i, a := range r.Result.Answers {
						want := refAnswers[qi][i]
						if a.Score != want.Score || a.Binding.Compare(want.Binding) != 0 {
							errs <- fmt.Errorf("worker %d query %d rank %d: %v, want %v", w, qi, i, a, want)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEngineConcurrentMixedModes runs all three engines concurrently against
// one store to exercise shared caches under mixed read patterns.
func TestEngineConcurrentMixedModes(t *testing.T) {
	eng, q := engineFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mode := []Mode{ModeSpecQP, ModeTriniT, ModeNaive}[w%3]
			if _, err := eng.Query(q, 3, mode); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
