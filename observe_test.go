package specqp

import (
	"context"
	"strings"
	"testing"

	"specqp/internal/wal"
)

// TestQueryTracedBitIdentity is the engine-level half of the tracing oracle:
// for every mode, a traced execution must return exactly the answers of the
// untraced one — same bindings, same scores, same order — while carrying a
// populated trace.
func TestQueryTracedBitIdentity(t *testing.T) {
	eng, q := engineFixture(t)
	for _, mode := range []Mode{ModeSpecQP, ModeTriniT, ModeNaive, ModeExact} {
		want, err := eng.QueryContext(context.Background(), q, 3, mode)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.QueryTraced(context.Background(), q, 3, mode)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswers(t, "traced vs untraced "+mode.String(), got.Answers, want.Answers)
		if got.Trace == nil {
			t.Fatalf("%v: no trace attached", mode)
		}
		if got.Trace.Mode != mode.String() {
			t.Fatalf("%v: trace mode %q", mode, got.Trace.Mode)
		}
		if got.Trace.Answers != len(got.Answers) {
			t.Fatalf("%v: trace answers %d, result %d", mode, got.Trace.Answers, len(got.Answers))
		}
		if mode != ModeNaive && got.Trace.Root == nil {
			t.Fatalf("%v: operator-tree mode produced no root", mode)
		}
		if mode == ModeNaive && got.Trace.Root != nil {
			t.Fatalf("naive mode produced an operator tree: %+v", got.Trace.Root)
		}
	}
}

// TestQueryTracedPlanCache pins the planner-decision fields: the first
// spec-qp run of a shape records a plan-cache miss, the second an
// identically-shaped hit, and both carry the shape key and relaxation count.
func TestQueryTracedPlanCache(t *testing.T) {
	eng, q := engineFixture(t)
	first, err := eng.QueryTraced(context.Background(), q, 3, ModeSpecQP)
	if err != nil {
		t.Fatal(err)
	}
	tr := first.Trace
	if !tr.PlanCached || tr.PlanCacheHit {
		t.Fatalf("first run: cached=%v hit=%v, want cached miss", tr.PlanCached, tr.PlanCacheHit)
	}
	if tr.ShapeKey == "" {
		t.Fatal("shape key not stamped")
	}
	if tr.K != 3 {
		t.Fatalf("trace k=%d", tr.K)
	}
	second, err := eng.QueryTraced(context.Background(), q, 3, ModeSpecQP)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Trace.PlanCacheHit {
		t.Fatal("second identical run: plan-cache miss")
	}
	if second.Trace.ShapeKey != tr.ShapeKey {
		t.Fatalf("shape key drifted: %q vs %q", second.Trace.ShapeKey, tr.ShapeKey)
	}
	// The executed tree did real work and says so.
	root := second.Trace.Root.Snapshot()
	if root.Pulls == 0 && root.Emits == 0 {
		t.Fatalf("root node recorded no activity: %+v", root)
	}
	var leaves int
	var walk func(*TraceNode)
	walk = func(n *TraceNode) {
		if len(n.Children) == 0 {
			leaves++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(second.Trace.Root)
	if leaves == 0 {
		t.Fatal("trace tree has no leaves")
	}
}

// TestExplainString checks the rendered explanation carries both halves —
// the planner's speculative reasoning and the executed trace — and that
// non-spec-qp modes render the trace alone.
func TestExplainString(t *testing.T) {
	eng, q := engineFixture(t)
	out, err := eng.ExplainString(context.Background(), q, 3, ModeSpecQP)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan:", "mode=spec-qp", "k=3", "answers="} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	exact, err := eng.ExplainString(context.Background(), q, 3, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(exact, "plan:") {
		t.Fatalf("exact mode rendered a speculative plan:\n%s", exact)
	}
	if !strings.Contains(exact, "mode=exact") {
		t.Fatalf("exact explain missing header:\n%s", exact)
	}
	if _, err := eng.ExplainString(context.Background(), NewQuery(), 3, ModeSpecQP); err == nil {
		t.Fatal("empty query accepted")
	}
}

// TestEngineStatsLifecycle drives a live engine through inserts, deletes,
// queries and a compaction and checks the Stats snapshot tracks each phase:
// head growth, tombstone accounting, compaction counters, plan-cache hits.
func TestEngineStatsLifecycle(t *testing.T) {
	eng, q := engineFixture(t)
	s0 := eng.Stats()
	if s0.LiveTriples != 9 || s0.HeadLen != 0 || s0.Tombstones != 0 {
		t.Fatalf("fresh stats: %+v", s0)
	}
	if s0.Durable {
		t.Fatal("flat engine reports durable")
	}

	if err := eng.InsertSPO("newbie", "rdf:type", "singer", 60); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DeleteSPO("miley", "rdf:type", "singer"); err != nil {
		t.Fatal(err)
	}
	s1 := eng.Stats()
	if s1.HeadLen != 1 {
		t.Fatalf("head after insert: %d", s1.HeadLen)
	}
	if s1.Tombstones != 1 {
		t.Fatalf("tombstones after delete: %d", s1.Tombstones)
	}
	if s1.LiveTriples != 9 { // 9 seed + 1 insert - 1 delete
		t.Fatalf("live triples: %d", s1.LiveTriples)
	}

	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	s2 := eng.Stats()
	if s2.HeadLen != 0 || s2.Tombstones != 0 {
		t.Fatalf("post-compact occupancy: head=%d tombstones=%d", s2.HeadLen, s2.Tombstones)
	}
	if s2.Compactions == 0 || s2.CompactionsFull == 0 {
		t.Fatalf("compaction not counted: %+v", s2)
	}

	// Two identical spec-qp queries through the cache-using traced path: one
	// plan-cache miss then one hit. (QueryContext plans afresh per call and
	// never consults the cache.)
	if _, err := eng.QueryTraced(context.Background(), q, 3, ModeSpecQP); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryTraced(context.Background(), q, 3, ModeSpecQP); err != nil {
		t.Fatal(err)
	}
	s3 := eng.Stats()
	if s3.PlanCacheMisses == 0 || s3.PlanCacheHits == 0 {
		t.Fatalf("plan cache accounting: hits=%d misses=%d", s3.PlanCacheHits, s3.PlanCacheMisses)
	}
}

// TestEngineStatsDurable checks the WAL-side counters on a durable engine:
// group commits, fsync accounting under SyncAlways, log position, and the
// checkpoint counters after an explicit Checkpoint.
func TestEngineStatsDurable(t *testing.T) {
	dict, triples, rules, _ := randomLiveFixture(t, 4242)
	base := len(triples) / 2
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules,
		Options{SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	for _, tr := range triples[base:] {
		if err := eng.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	s := eng.Stats()
	if !s.Durable {
		t.Fatal("durable engine not flagged")
	}
	inserted := int64(len(triples) - base)
	if s.WALCommits == 0 || s.WALCommitRecords < inserted {
		t.Fatalf("group-commit accounting: commits=%d records=%d want >=%d records",
			s.WALCommits, s.WALCommitRecords, inserted)
	}
	if s.WALCommits > s.WALCommitRecords {
		t.Fatalf("more commits than records: %d > %d", s.WALCommits, s.WALCommitRecords)
	}
	if s.WALFsyncs == 0 || s.WALFsyncNS <= 0 {
		t.Fatalf("SyncAlways fsync accounting: count=%d ns=%d", s.WALFsyncs, s.WALFsyncNS)
	}
	if s.WALLastSeq == 0 || s.WALSize <= 0 || s.WALSegments == 0 {
		t.Fatalf("log position: seq=%d size=%d segments=%d", s.WALLastSeq, s.WALSize, s.WALSegments)
	}
	// Bootstrap may have written an initial snapshot through the same path;
	// take the current count as the baseline.
	baseline := s.Checkpoints

	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2 := eng.Stats()
	if s2.Checkpoints != baseline+1 {
		t.Fatalf("checkpoints: %d, want %d", s2.Checkpoints, baseline+1)
	}
	if s2.LastCheckpointBytes <= 0 || s2.CheckpointNS <= 0 {
		t.Fatalf("checkpoint size/time not recorded: bytes=%d ns=%d",
			s2.LastCheckpointBytes, s2.CheckpointNS)
	}
	if s2.Wedged {
		t.Fatal("healthy engine reports wedged")
	}
}
