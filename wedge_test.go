package specqp

import (
	"errors"
	"testing"

	"specqp/internal/wal"
)

// TestWedgedEngineDegradesReadOnly pins the library-level graceful
// degradation contract the serving layer builds on: an I/O fault that wedges
// the write-ahead log makes every subsequent mutation fail fast with a typed,
// errors.Is-able ErrWedged, while queries keep serving — bit-identical to a
// flat oracle over the triples that are actually visible.
func TestWedgedEngineDegradesReadOnly(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 9901)
	base := len(triples) / 2
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules, Options{
		Shards:     2,
		SyncPolicy: SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if eng.Wedged() {
		t.Fatal("fresh engine reports wedged")
	}

	// Ingest a few triples cleanly, then arm the byte-budget fault so the
	// next commit dies mid-write.
	pos := base
	for ; pos < base+3; pos++ {
		if err := eng.Insert(triples[pos]); err != nil {
			t.Fatal(err)
		}
	}
	fs.SetBudget(1)

	// Insert until the wedge fires; the failing insert itself must already
	// carry the typed error.
	var werr error
	for ; pos < len(triples); pos++ {
		if werr = eng.Insert(triples[pos]); werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("no insert failed despite exhausted byte budget")
	}
	if !errors.Is(werr, ErrWedged) {
		t.Fatalf("failing insert not ErrWedged: %v", werr)
	}
	if !eng.Wedged() {
		t.Fatal("engine not wedged after failed commit")
	}

	// Read-only: every mutation kind fails fast with the same typed error.
	if err := eng.Insert(triples[len(triples)-1]); !errors.Is(err, ErrWedged) {
		t.Fatalf("insert after wedge: %v", err)
	}
	tr := triples[0]
	if _, err := eng.Delete(tr.S, tr.P, tr.O); !errors.Is(err, ErrWedged) {
		t.Fatalf("delete after wedge: %v", err)
	}
	if err := eng.Update(Triple{S: tr.S, P: tr.P, O: tr.O, Score: 123}); !errors.Is(err, ErrWedged) {
		t.Fatalf("update after wedge: %v", err)
	}

	// Queries keep serving. The failing insert is indeterminate (it may or
	// may not be visible), so the oracle covers whatever prefix the engine
	// actually holds — which must still be a coherent fixture prefix.
	visible := eng.Graph().Len()
	if visible < base+3 || visible > len(triples) {
		t.Fatalf("visible triples %d out of range [%d, %d]", visible, base+3, len(triples))
	}
	assertTriplePrefix(t, "wedged", eng.Graph(), dict, triples, visible)
	assertOracleEqual(t, "wedged", eng, flatOracle(t, dict, triples, visible, rules), queries)
}
