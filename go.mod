module specqp

go 1.24
