package specqp_test

import (
	"fmt"
	"log"

	"specqp"
)

// buildExampleEngine assembles the paper's running example: musicians with
// popularity scores and two relaxation rules.
func buildExampleEngine() *specqp.Engine {
	st := specqp.NewStore()
	for _, t := range []struct {
		s, o  string
		score float64
	}{
		{"shakira", "singer", 100}, {"beyonce", "singer", 90},
		{"prince", "vocalist", 95}, {"elton", "vocalist", 85},
		{"shakira", "guitarist", 40}, {"prince", "guitarist", 99},
		{"beyonce", "musician", 70},
	} {
		if err := st.AddSPO(t.s, "rdf:type", t.o, t.score); err != nil {
			log.Fatal(err)
		}
	}
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("rdf:type")
	pat := func(o string) specqp.Pattern {
		id, _ := d.Lookup(o)
		return specqp.NewPattern(specqp.Var("s"), specqp.Const(ty), specqp.Const(id))
	}
	rules := specqp.NewRuleSet()
	if err := rules.Add(specqp.Rule{From: pat("singer"), To: pat("vocalist"), Weight: 0.8}); err != nil {
		log.Fatal(err)
	}
	if err := rules.Add(specqp.Rule{From: pat("guitarist"), To: pat("musician"), Weight: 0.7}); err != nil {
		log.Fatal(err)
	}
	return specqp.NewEngine(st, rules)
}

// ExampleEngine_QuerySPARQL shows the one-call path: SPARQL in, ranked
// answers out, with LIMIT selecting k.
func ExampleEngine_QuerySPARQL() {
	eng := buildExampleEngine()
	res, err := eng.QuerySPARQL(`SELECT ?s WHERE {
		?s 'rdf:type' <singer> .
		?s 'rdf:type' <guitarist>
	} LIMIT 2`, specqp.ModeSpecQP)
	if err != nil {
		log.Fatal(err)
	}
	q, _ := eng.ParseSPARQL(`SELECT ?s WHERE { ?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> }`)
	for i, a := range res.Answers {
		fmt.Printf("%d. %s %.2f\n", i+1, eng.DecodeAnswer(q, a)["s"], a.Score)
	}
	// Output:
	// 1. prince 1.80
	// 2. beyonce 1.60
}

// ExampleEngine_PlanQuery inspects the speculative plan without executing.
func ExampleEngine_PlanQuery() {
	eng := buildExampleEngine()
	q, err := eng.ParseSPARQL(`SELECT ?s WHERE {
		?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> }`)
	if err != nil {
		log.Fatal(err)
	}
	plan := eng.PlanQuery(q, 2)
	fmt.Println("patterns relaxed:", plan.NumRelaxed(), "of", len(q.Patterns))
	// Output:
	// patterns relaxed: 2 of 2
}

// ExampleMineCooccurrence mines Twitter-style relaxations from term
// co-occurrence, exactly as the paper constructs its Twitter rule set.
func ExampleMineCooccurrence() {
	st := specqp.NewStore()
	for _, tw := range []struct{ id, tag string }{
		{"t1", "#ariana"}, {"t1", "#video"},
		{"t2", "#ariana"}, {"t2", "#video"},
		{"t3", "#ariana"}, {"t3", "#pop"},
	} {
		if err := st.AddSPO(tw.id, "hasTag", tw.tag, 1); err != nil {
			log.Fatal(err)
		}
	}
	st.Freeze()
	hasTag, _ := st.Dict().Lookup("hasTag")
	rules, err := specqp.MineCooccurrence(st, hasTag, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	ariana, _ := st.Dict().Lookup("#ariana")
	p := specqp.NewPattern(specqp.Var("s"), specqp.Const(hasTag), specqp.Const(ariana))
	for _, r := range rules.For(p) {
		fmt.Printf("#ariana → %s w=%.2f\n", st.Dict().Decode(r.To.O.ID), r.Weight)
	}
	// Output:
	// #ariana → #video w=0.67
	// #ariana → #pop w=0.33
}
